"""Tests for the frontier-batched diffusion engine and its consumers.

Parity is stated the way the paper states it (Section 3.3): any push
schedule — scalar deque order or synchronized frontier sweeps — satisfies
the same push invariant and exits with ``r_u < ε d_u``, hence both outputs
obey ``|p_u − pr_α(s)_u| ≤ ε d_u`` and differ from *each other* by at most
``2 ε d_u`` entrywise. Sweep cuts computed by the vectorized prefix scan
must match the scalar reference exactly, including tie-breaking.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.diffusion.engine import (
    BatchHeatKernelResult,
    BatchPushResult,
    batch_hk_push,
    batch_ppr_push,
    ppr_push_frontier,
)
from repro.diffusion.hk_push import (
    SERIES_T_MAX,
    heat_kernel_push,
    terms_for_tail,
)
from repro.diffusion.truncated_walk import truncated_lazy_walk
from repro.diffusion.pagerank import lazy_pagerank_exact
from repro.diffusion.push import approximate_ppr_push
from repro.diffusion.seeds import (
    degree_weighted_indicator_seed,
    indicator_seed,
)
from repro.exceptions import InvalidParameterError
from repro.graph.build import from_edges
from repro.partition.sweep import sweep_cut


def random_graph(rng, n, extra_edges, *, weighted=False):
    """Random connected graph: spanning tree + extra edges."""
    edges = {}
    for v in range(1, n):
        u = int(rng.integers(0, v))
        edges[(u, v)] = float(rng.uniform(0.25, 4.0)) if weighted else 1.0
    for _ in range(extra_edges):
        u, v = sorted(int(x) for x in rng.integers(0, n, size=2))
        if u != v and (u, v) not in edges:
            edges[(u, v)] = float(rng.uniform(0.25, 4.0)) if weighted else 1.0
    pairs = sorted(edges)
    return from_edges(n, pairs, [edges[p] for p in pairs])


class TestFrontierScalarParity:
    @pytest.mark.parametrize("alpha,epsilon", [
        (0.05, 1e-3), (0.05, 1e-4), (0.2, 1e-3), (0.2, 1e-5),
    ])
    def test_both_meet_entrywise_guarantee(self, whiskered, alpha, epsilon):
        s = degree_weighted_indicator_seed(whiskered, [3])
        exact = lazy_pagerank_exact(whiskered, alpha, s)
        bound = epsilon * whiskered.degrees
        scalar = approximate_ppr_push(
            whiskered, s, alpha=alpha, epsilon=epsilon
        )
        frontier = ppr_push_frontier(
            whiskered, s, alpha=alpha, epsilon=epsilon
        )
        for result in (scalar, frontier):
            assert np.all(np.abs(result.approximation - exact) <= bound + 1e-12)
            assert np.all(result.residual <= bound + 1e-15)
            assert np.all(result.residual >= 0)
        # Schedules differ, but only inside the shared eps*d envelope.
        gap = np.abs(frontier.approximation - scalar.approximation)
        assert np.all(gap <= 2 * bound + 1e-12)

    def test_parity_on_random_graphs(self):
        rng = np.random.default_rng(42)
        for trial in range(8):
            graph = random_graph(
                rng, int(rng.integers(8, 40)), int(rng.integers(0, 30)),
                weighted=trial % 2 == 0,
            )
            s = indicator_seed(graph, [int(rng.integers(graph.num_nodes))])
            alpha = float(rng.uniform(0.05, 0.5))
            epsilon = float(rng.choice([1e-2, 1e-3, 1e-4]))
            scalar = approximate_ppr_push(
                graph, s, alpha=alpha, epsilon=epsilon
            )
            frontier = ppr_push_frontier(
                graph, s, alpha=alpha, epsilon=epsilon
            )
            exact = lazy_pagerank_exact(graph, alpha, s)
            bound = epsilon * graph.degrees
            assert np.all(
                np.abs(frontier.approximation - exact) <= bound + 1e-12
            )
            assert np.all(
                np.abs(frontier.approximation - scalar.approximation)
                <= 2 * bound + 1e-12
            )

    def test_identical_sweep_cuts_from_both_schedules(self, whiskered):
        # The downstream rounding step: both diffusions must induce the
        # same community when swept (the supports and orderings agree up
        # to eps-sized perturbations on a graph with a clear cluster).
        s = degree_weighted_indicator_seed(whiskered, [42])
        scalar = approximate_ppr_push(whiskered, s, alpha=0.1, epsilon=1e-4)
        frontier = ppr_push_frontier(whiskered, s, alpha=0.1, epsilon=1e-4)
        cut_scalar = sweep_cut(
            whiskered, scalar.approximation,
            restrict_to=np.flatnonzero(scalar.approximation > 0),
        )
        cut_frontier = sweep_cut(
            whiskered, frontier.approximation,
            restrict_to=np.flatnonzero(frontier.approximation > 0),
        )
        assert np.array_equal(cut_scalar.nodes, cut_frontier.nodes)
        assert cut_scalar.conductance == pytest.approx(
            cut_frontier.conductance
        )

    def test_work_accounting_matches_bound(self, whiskered):
        s = degree_weighted_indicator_seed(whiskered, [0])
        alpha, epsilon = 0.1, 1e-4
        result = batch_ppr_push(
            whiskered, [s], alphas=(alpha,), epsilons=(epsilon,)
        )
        # eps * alpha * (sum of pushed degrees) <= ||s||_1: the O(1/(eps
        # alpha)) locality bound of [1], checked as an exact inequality.
        assert epsilon * alpha * result.pushed_volume[0] <= s.sum() + 1e-12
        assert result.num_pushes[0] > 0
        assert result.work[0] >= result.num_pushes[0]


class TestBatchSemantics:
    def test_grid_columns_match_single_runs(self, whiskered):
        seeds = [3, 17]
        alphas = (0.05, 0.2)
        epsilons = (1e-2, 1e-4)
        batch = batch_ppr_push(
            whiskered, seeds, alphas=alphas, epsilons=epsilons
        )
        assert isinstance(batch, BatchPushResult)
        assert batch.num_columns == 8
        b = 0
        for si, seed_node in enumerate(seeds):
            vector = indicator_seed(whiskered, [seed_node])
            for alpha in alphas:
                for epsilon in epsilons:
                    assert batch.seed_indices[b] == si
                    assert batch.alphas[b] == alpha
                    assert batch.epsilons[b] == epsilon
                    single = ppr_push_frontier(
                        whiskered, vector, alpha=alpha, epsilon=epsilon
                    )
                    column = batch.column(b)
                    assert np.allclose(
                        column.approximation, single.approximation,
                        atol=1e-14,
                    )
                    assert np.allclose(
                        column.residual, single.residual, atol=1e-14
                    )
                    assert column.num_pushes == single.num_pushes
                    assert column.work == single.work
                    assert np.array_equal(column.touched, single.touched)
                    b += 1

    def test_vector_and_node_id_seeds_agree(self, whiskered):
        by_id = batch_ppr_push(whiskered, [5])
        by_vector = batch_ppr_push(whiskered, [indicator_seed(whiskered, [5])])
        assert np.allclose(
            by_id.approximation, by_vector.approximation, atol=0
        )

    def test_converged_columns_stop_accumulating_work(self, whiskered):
        # A loose-epsilon column must do no more work batched with a tight
        # one than it does alone.
        alone = batch_ppr_push(whiskered, [3], epsilons=(1e-2,))
        together = batch_ppr_push(whiskered, [3], epsilons=(1e-2, 1e-5))
        assert together.num_pushes[0] == alone.num_pushes[0]
        assert together.work[0] == alone.work[0]

    def test_column_out_of_range_rejected(self, whiskered):
        batch = batch_ppr_push(whiskered, [0])
        with pytest.raises(InvalidParameterError):
            batch.column(1)
        with pytest.raises(InvalidParameterError):
            batch.column(-1)

    def test_invalid_inputs_rejected(self, whiskered):
        with pytest.raises(InvalidParameterError):
            batch_ppr_push(whiskered, [])
        with pytest.raises(InvalidParameterError):
            batch_ppr_push(whiskered, [np.full(whiskered.num_nodes, -1.0)])
        with pytest.raises(InvalidParameterError):
            batch_ppr_push(whiskered, [0], alphas=(0.0,))
        with pytest.raises(InvalidParameterError):
            batch_ppr_push(whiskered, [0], epsilons=(2.0,))

    def test_push_cap_enforced(self, whiskered):
        with pytest.raises(InvalidParameterError):
            batch_ppr_push(
                whiskered, [0], epsilons=(1e-6,), max_pushes=3
            )

    def test_sub_unit_degrees_converge(self):
        # Regression: the default push cap used the count bound
        # ||s||_1/(eps*alpha), which is only valid for degrees >= 1; a
        # star with weight-0.01 edges used to hit the cap and raise on
        # both the scalar and the batched path.
        n = 200
        star = from_edges(
            n, [(0, v) for v in range(1, n)], [0.01] * (n - 1)
        )
        s = indicator_seed(star, [0])
        scalar = approximate_ppr_push(star, s, alpha=0.5, epsilon=0.1)
        frontier = ppr_push_frontier(star, s, alpha=0.5, epsilon=0.1)
        bound = 0.1 * star.degrees
        for result in (scalar, frontier):
            assert np.all(result.residual <= bound + 1e-15)
            assert result.num_pushes > 0

    def test_seed_below_threshold_converges_instantly(self, whiskered):
        tiny = np.zeros(whiskered.num_nodes)
        tiny[0] = 1e-9
        result = batch_ppr_push(whiskered, [tiny], epsilons=(1e-2,))
        assert result.num_sweeps == 0
        assert np.all(result.approximation == 0)
        assert np.allclose(result.residual[:, 0], tiny)


class TestSweepScanParity:
    def test_vectorized_matches_scalar_unweighted_exactly(self):
        # Unweighted graphs keep every cut/volume integer-valued, so the
        # two scans must agree bitwise — including tie-breaking.
        rng = np.random.default_rng(7)
        for _ in range(15):
            graph = random_graph(rng, int(rng.integers(6, 30)),
                                 int(rng.integers(0, 25)))
            scores = rng.integers(0, 4, size=graph.num_nodes).astype(float)
            scalar = sweep_cut(
                graph, scores, degree_normalize=False,
                backend="scalar",
            )
            fast = sweep_cut(
                graph, scores, degree_normalize=False,
                backend="numpy",
            )
            assert np.array_equal(scalar.nodes, fast.nodes)
            assert scalar.conductance == fast.conductance
            assert scalar.volume == fast.volume
            assert np.array_equal(
                np.isfinite(scalar.profile), np.isfinite(fast.profile)
            )

    def test_vectorized_matches_scalar_with_options(self, whiskered, rng):
        for trial in range(10):
            scores = rng.random(whiskered.num_nodes)
            kwargs = {}
            if trial % 3 == 1:
                kwargs["max_volume"] = float(
                    whiskered.total_volume * rng.uniform(0.2, 0.8)
                )
            if trial % 3 == 2:
                kwargs["min_size"] = 3
                kwargs["restrict_to"] = rng.choice(
                    whiskered.num_nodes, size=20, replace=False
                )
            scalar = sweep_cut(
                whiskered, scores, backend="scalar", **kwargs
            )
            fast = sweep_cut(
                whiskered, scores, backend="numpy", **kwargs
            )
            assert np.array_equal(scalar.nodes, fast.nodes)
            assert scalar.conductance == pytest.approx(
                fast.conductance, abs=1e-12
            )
            both = np.isfinite(scalar.profile) & np.isfinite(fast.profile)
            assert np.array_equal(
                np.isfinite(scalar.profile), np.isfinite(fast.profile)
            )
            assert np.allclose(
                scalar.profile[both], fast.profile[both], atol=1e-12
            )

    def test_unknown_implementation_rejected(self, whiskered, rng):
        with pytest.raises(InvalidParameterError):
            sweep_cut(
                whiskered, rng.random(whiskered.num_nodes),
                backend="quantum",
            )


class TestNCPEngineParity:
    def test_batched_profile_matches_scalar_path(self, whiskered):
        from repro.dynamics import DiffusionGrid, PPR
        from repro.ncp.profile import (
            best_per_size_bucket,
            cluster_ensemble_ncp,
        )

        kwargs = dict(
            dynamics=PPR(alpha=(0.05, 0.15)), epsilons=(1e-3, 1e-4),
            num_seeds=8, seed=0,
        )
        scalar = cluster_ensemble_ncp(
            whiskered, DiffusionGrid(backend="scalar", **kwargs)
        )
        batched = cluster_ensemble_ncp(
            whiskered, DiffusionGrid(backend="numpy", **kwargs)
        )
        assert len(batched) > 0
        profile_scalar = best_per_size_bucket(scalar, num_buckets=6)
        profile_batched = best_per_size_bucket(batched, num_buckets=6)
        assert np.allclose(
            profile_scalar.bucket_edges, profile_batched.bucket_edges
        )
        finite_scalar = np.isfinite(profile_scalar.best_conductance)
        finite_batched = np.isfinite(profile_batched.best_conductance)
        assert np.array_equal(finite_scalar, finite_batched)
        # The diffusions agree within eps*d, so per-bucket best
        # conductances can only drift by an eps-sized sweep perturbation.
        assert np.allclose(
            profile_scalar.best_conductance[finite_scalar],
            profile_batched.best_conductance[finite_batched],
            atol=0.05,
        )

    def test_unknown_engine_rejected(self):
        from repro.dynamics import DiffusionGrid, PPR

        with pytest.raises(InvalidParameterError):
            DiffusionGrid(PPR(), backend="gpu")


class TestHeatKernelPushHardening:
    def test_terms_for_tail_raises_past_boundary(self):
        # Used to spin through the 100k iteration cap when exp(-t)
        # underflowed; must now fail fast and consistently.
        start = time.perf_counter()
        with pytest.raises(InvalidParameterError):
            terms_for_tail(SERIES_T_MAX + 1.0, 1e-6)
        with pytest.raises(InvalidParameterError):
            terms_for_tail(1e6, 1e-6)
        assert time.perf_counter() - start < 0.5

    def test_heat_kernel_push_raises_past_boundary(self, ring):
        s = indicator_seed(ring, [0])
        with pytest.raises(InvalidParameterError):
            heat_kernel_push(ring, s, SERIES_T_MAX + 1.0)
        # Explicit num_terms does not bypass the guard: the Taylor
        # weights all underflow, so the output would be silently zero.
        with pytest.raises(InvalidParameterError):
            heat_kernel_push(ring, s, 1e4, num_terms=5)

    def test_boundary_time_still_works(self):
        assert terms_for_tail(SERIES_T_MAX, 0.5) >= 1

    def test_vectorized_stage_matches_exact_heat_kernel(self, ring):
        from repro.diffusion.heat_kernel import heat_kernel_vector

        s = indicator_seed(ring, [0])
        t = 2.0
        result = heat_kernel_push(ring, s, t, epsilon=1e-7)
        exact = heat_kernel_vector(ring, s, t, kind="random_walk")
        total_error = result.dropped_mass + result.tail_bound
        assert np.abs(result.approximation - exact).sum() <= (
            total_error + 1e-9
        )


class TestBatchHeatKernel:
    TS = (0.5, 3.0, 10.0)
    EPS = (1e-3, 1e-4)

    def test_grid_columns_match_scalar_oracle(self, whiskered):
        seeds = [3, 17, 55]
        batch = batch_hk_push(
            whiskered, seeds, ts=self.TS, epsilons=self.EPS
        )
        assert isinstance(batch, BatchHeatKernelResult)
        assert batch.num_columns == len(seeds) * len(self.TS) * len(self.EPS)
        b = 0
        for si, seed_node in enumerate(seeds):
            vector = indicator_seed(whiskered, [seed_node])
            for t in self.TS:
                for epsilon in self.EPS:
                    assert batch.seed_indices[b] == si
                    assert batch.ts[b] == t
                    assert batch.epsilons[b] == epsilon
                    scalar = heat_kernel_push(
                        whiskered, vector, t, epsilon=epsilon
                    )
                    column = batch.column(b)
                    # The t-free stage recursion reproduces the scalar
                    # stages up to summation order, so everything matches
                    # to roundoff.
                    assert np.allclose(
                        column.approximation, scalar.approximation,
                        atol=1e-13,
                    )
                    assert column.num_terms == scalar.num_terms
                    assert column.work == scalar.work
                    assert np.array_equal(column.touched, scalar.touched)
                    assert column.dropped_mass == pytest.approx(
                        scalar.dropped_mass, abs=1e-12
                    )
                    assert column.tail_bound == pytest.approx(
                        scalar.tail_bound, abs=1e-15
                    )
                    b += 1

    def test_parity_on_random_graphs(self):
        rng = np.random.default_rng(7)
        for trial in range(6):
            graph = random_graph(
                rng, int(rng.integers(8, 40)), int(rng.integers(0, 30)),
                weighted=trial % 2 == 0,
            )
            seed_node = int(rng.integers(graph.num_nodes))
            t = float(rng.uniform(0.2, 8.0))
            epsilon = float(rng.choice([1e-2, 1e-3, 1e-4]))
            scalar = heat_kernel_push(
                graph, indicator_seed(graph, [seed_node]), t,
                epsilon=epsilon,
            )
            batch = batch_hk_push(
                graph, [seed_node], ts=(t,), epsilons=(epsilon,)
            )
            assert np.allclose(
                batch.approximation[:, 0], scalar.approximation,
                atol=1e-13,
            )
            assert int(batch.work[0]) == scalar.work

    def test_entrywise_error_budget_vs_exact(self, ring):
        from repro.diffusion.heat_kernel import heat_kernel_vector

        s = indicator_seed(ring, [0])
        t = 2.0
        batch = batch_hk_push(ring, [s], ts=(t,), epsilons=(1e-7,))
        exact = heat_kernel_vector(ring, s, t, kind="random_walk")
        budget = batch.dropped_mass[0] + batch.tail_bound[0]
        assert np.abs(batch.approximation[:, 0] - exact).sum() <= (
            budget + 1e-9
        )

    def test_zero_time_returns_rounded_seed(self, ring):
        s = indicator_seed(ring, [0])
        batch = batch_hk_push(ring, [s], ts=(0.0,), epsilons=(1e-4,))
        scalar = heat_kernel_push(ring, s, 0.0, epsilon=1e-4)
        assert np.allclose(
            batch.approximation[:, 0], scalar.approximation, atol=1e-15
        )

    def test_explicit_num_terms_matches_scalar(self, ring):
        s = indicator_seed(ring, [0])
        batch = batch_hk_push(
            ring, [s], ts=(2.0,), epsilons=(1e-4,), num_terms=5
        )
        scalar = heat_kernel_push(ring, s, 2.0, epsilon=1e-4, num_terms=5)
        assert np.allclose(
            batch.approximation[:, 0], scalar.approximation, atol=1e-13
        )
        assert int(batch.num_terms[0]) == scalar.num_terms == 5

    def test_invalid_inputs_rejected(self, ring):
        with pytest.raises(InvalidParameterError):
            batch_hk_push(ring, [], ts=(1.0,))
        with pytest.raises(InvalidParameterError):
            batch_hk_push(ring, [0], ts=(SERIES_T_MAX + 1.0,))
        with pytest.raises(InvalidParameterError):
            batch_hk_push(ring, [0], ts=(1.0,), epsilons=(2.0,))
        with pytest.raises(InvalidParameterError):
            batch_hk_push(ring, [np.full(ring.num_nodes, -1.0)])
        batch = batch_hk_push(ring, [0])
        with pytest.raises(InvalidParameterError):
            batch.column(batch.num_columns)
        with pytest.raises(InvalidParameterError):
            batch.column(-1)


class TestVectorizedTruncatedWalk:
    def test_matches_scalar_trajectory(self, whiskered):
        s = degree_weighted_indicator_seed(whiskered, [7])
        scalar = truncated_lazy_walk(
            whiskered, s, 12, epsilon=1e-4, backend="scalar"
        )
        fast = truncated_lazy_walk(
            whiskered, s, 12, epsilon=1e-4, backend="numpy"
        )
        assert len(scalar.trajectory) == len(fast.trajectory) == 13
        for a, b in zip(scalar.trajectory, fast.trajectory):
            assert np.allclose(a, b, atol=1e-13)
        assert scalar.support_sizes == fast.support_sizes
        assert scalar.support_volumes == fast.support_volumes
        assert scalar.dropped_mass == pytest.approx(
            fast.dropped_mass, abs=1e-12
        )

    def test_parity_on_random_weighted_graphs(self):
        rng = np.random.default_rng(11)
        for trial in range(6):
            graph = random_graph(
                rng, int(rng.integers(6, 30)), int(rng.integers(0, 25)),
                weighted=True,
            )
            s = indicator_seed(graph, [int(rng.integers(graph.num_nodes))])
            epsilon = float(rng.choice([1e-2, 1e-3]))
            alpha = float(rng.uniform(0.3, 0.7))
            steps = int(rng.integers(1, 10))
            scalar = truncated_lazy_walk(
                graph, s, steps, epsilon=epsilon, alpha=alpha,
                backend="scalar",
            )
            fast = truncated_lazy_walk(
                graph, s, steps, epsilon=epsilon, alpha=alpha,
                backend="numpy",
            )
            assert np.allclose(scalar.final, fast.final, atol=1e-13)

    def test_keep_trajectory_false_still_accounts_support(self, ring):
        s = indicator_seed(ring, [0])
        result = truncated_lazy_walk(
            ring, s, 5, epsilon=1e-4, keep_trajectory=False
        )
        assert result.trajectory == []
        assert len(result.support_sizes) == 6
        assert len(result.support_volumes) == 6

    def test_unknown_implementation_rejected(self, ring):
        with pytest.raises(InvalidParameterError):
            truncated_lazy_walk(
                ring, indicator_seed(ring, [0]), 3, epsilon=1e-3,
                backend="fpga",
            )


@pytest.mark.perf
class TestEnginePerformanceRegression:
    def test_batched_engines_beat_scalar_loops(self):
        """Smoke benchmark: every batched dynamics vs its scalar loop.

        Times the PPR push grid, the heat-kernel t-grid, and the
        truncated lazy walk on the synthetic AtP-DBLP reference graph,
        writes ``BENCH_engine.json`` with one section per dynamics, and
        fails if any batched/vectorized path regresses below its scalar
        oracle loop.
        """
        from repro.datasets import load_graph

        graph = load_graph("atp")
        rng = np.random.default_rng(0)
        nodes = rng.choice(graph.num_nodes, size=10, replace=False)
        seeds = [
            degree_weighted_indicator_seed(graph, [int(u)]) for u in nodes
        ]
        alphas = (0.05, 0.15)
        epsilons = (1e-3, 1e-4)
        hk_ts = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
        walk_steps = 30

        def time_ppr_scalar():
            start = time.perf_counter()
            pushes = 0
            for vector in seeds:
                for alpha in alphas:
                    for epsilon in epsilons:
                        result = approximate_ppr_push(
                            graph, vector, alpha=alpha, epsilon=epsilon
                        )
                        pushes += result.num_pushes
            return time.perf_counter() - start, pushes

        def time_ppr_batched():
            start = time.perf_counter()
            result = batch_ppr_push(
                graph, seeds, alphas=alphas, epsilons=epsilons
            )
            return time.perf_counter() - start, result

        def time_hk_scalar():
            start = time.perf_counter()
            for vector in seeds:
                for t in hk_ts:
                    for epsilon in epsilons:
                        heat_kernel_push(graph, vector, t, epsilon=epsilon)
            return time.perf_counter() - start, None

        def time_hk_batched():
            start = time.perf_counter()
            result = batch_hk_push(
                graph, seeds, ts=hk_ts, epsilons=epsilons
            )
            return time.perf_counter() - start, result

        def time_walk(backend):
            def timer():
                start = time.perf_counter()
                for vector in seeds:
                    truncated_lazy_walk(
                        graph, vector, walk_steps, epsilon=1e-4,
                        keep_trajectory=False,
                        backend=backend,
                    )
                return time.perf_counter() - start, None
            return timer

        def best_of(timer, rounds=3):
            # Best of several rounds, so a one-off scheduler or GC pause
            # on a noisy CI runner cannot flip the comparison.
            return min((timer() for _ in range(rounds)),
                       key=lambda pair: pair[0])

        scalar_seconds, scalar_pushes = best_of(time_ppr_scalar)
        batched_seconds, batch = best_of(time_ppr_batched)
        hk_scalar_seconds, _ = best_of(time_hk_scalar)
        hk_batched_seconds, hk_batch = best_of(time_hk_batched)
        walk_scalar_seconds, _ = best_of(time_walk("scalar"))
        walk_vec_seconds, _ = best_of(time_walk("numpy"))

        batched_pushes = int(batch.num_pushes.sum())
        report = {
            "graph": "atp (synthetic AtP-DBLP, small)",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "ppr": {
                "num_columns": batch.num_columns,
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "scalar_pushes_per_sec": scalar_pushes / scalar_seconds,
                "batched_pushes_per_sec": batched_pushes / batched_seconds,
                "speedup": scalar_seconds / batched_seconds,
                "num_sweeps": batch.num_sweeps,
            },
            "hk": {
                "num_columns": hk_batch.num_columns,
                "t_grid": list(hk_ts),
                "scalar_seconds": hk_scalar_seconds,
                "batched_seconds": hk_batched_seconds,
                "speedup": hk_scalar_seconds / hk_batched_seconds,
                "num_stages": hk_batch.num_stages,
            },
            "walk": {
                "num_walks": len(seeds),
                "num_steps": walk_steps,
                "scalar_seconds": walk_scalar_seconds,
                "vectorized_seconds": walk_vec_seconds,
                "speedup": walk_scalar_seconds / walk_vec_seconds,
            },
        }
        out_path = Path(__file__).resolve().parents[1] / "BENCH_engine.json"
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        assert batched_seconds <= scalar_seconds, (
            f"batched PPR engine regressed below scalar: {report}"
        )
        assert hk_batched_seconds <= hk_scalar_seconds, (
            f"batched HK engine regressed below scalar: {report}"
        )
        assert walk_vec_seconds <= walk_scalar_seconds, (
            f"vectorized walk regressed below scalar: {report}"
        )
