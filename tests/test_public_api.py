"""Public-API smoke: every ``__all__`` name imports, every dynamics runs.

The CI ``public-api-smoke`` job runs this module on its own: it imports
every name exported by each package's ``__all__`` (so a broken re-export
or a renamed symbol fails loudly, not at a user's first import) and
instantiates every registered dynamics — default spec, default grid,
local point spec — through the registry.
"""

from __future__ import annotations

import importlib

import pytest

from repro.dynamics import (
    DiffusionGrid,
    get_dynamics,
    registered_dynamics,
)
from repro.graph.generators import ring_of_cliques

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.datasets",
    "repro.diffusion",
    "repro.dynamics",
    "repro.graph",
    "repro.linalg",
    "repro.ncp",
    "repro.partition",
    "repro.regularization",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_every_public_name_is_importable(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} must declare a nonempty __all__"
    assert sorted(set(exported)) == sorted(exported), (
        f"{package}.__all__ contains duplicates"
    )
    for name in exported:
        assert getattr(module, name, None) is not None, (
            f"{package}.__all__ exports {name!r} but the attribute is "
            "missing or None"
        )


def test_every_registered_dynamics_instantiates():
    graph = ring_of_cliques(4, 5)
    kinds = registered_dynamics()
    assert set(kinds) >= {"ppr", "hk", "walk"}
    for key, kind in kinds.items():
        spec = kind.default_spec()
        assert get_dynamics(spec) is kind, key
        assert spec.default_epsilons, key
        assert spec.grid_size(spec.default_epsilons) >= 1, key

        grid = DiffusionGrid(spec)
        assert grid.key == key
        assert grid.resolved_epsilons() == tuple(spec.default_epsilons)

        local = kind.local_spec(graph)
        assert get_dynamics(local) is kind, key
        # A local spec must be a usable single point for every swept axis.
        for axis, values in local.grid_axes().items():
            assert len(values) == 1, (key, axis)


def test_every_registered_dynamics_yields_columns():
    graph = ring_of_cliques(4, 5)
    for key, kind in registered_dynamics().items():
        spec = kind.default_spec()
        columns = list(
            spec.iter_columns(
                graph, [0], epsilons=(1e-3,), engine="batched"
            )
        )
        assert len(columns) == spec.grid_size((1e-3,)), key
        assert all(column.shape == (graph.num_nodes,) for column in columns)


def test_facade_and_subpackage_exports_agree():
    import repro
    import repro.api as api

    # The facade re-exports the registry objects, not copies.
    assert api.get_dynamics("ppr") is repro.get_dynamics("ppr")
    assert api.canonical_dynamics() == repro.canonical_dynamics()
    assert api.PPR is repro.PPR
    assert api.DiffusionGrid is repro.DiffusionGrid
