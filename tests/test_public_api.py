"""Public-API smoke: every ``__all__`` name imports and documents itself.

The CI ``public-api-smoke`` job runs this module on its own: it imports
every name exported by each package's ``__all__`` (so a broken re-export
or a renamed symbol fails loudly, not at a user's first import), asserts
that every exported module/class/function carries a non-empty docstring,
that every CLI subcommand and option carries help text, and instantiates
every registered dynamics — default spec, default grid, local point spec
— through the registry.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

from repro.cli import build_parser
from repro.dynamics import (
    DiffusionGrid,
    get_dynamics,
    registered_dynamics,
)
from repro.graph.generators import ring_of_cliques
from repro.refine import (
    Pipeline,
    get_refiner,
    registered_refiners,
)

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.api",
    "repro.backends",
    "repro.cli",
    "repro.core",
    "repro.datasets",
    "repro.diffusion",
    "repro.dynamics",
    "repro.execution",
    "repro.graph",
    "repro.linalg",
    "repro.ncp",
    "repro.partition",
    "repro.refine",
    "repro.regularization",
]

SUBCOMMANDS = ("datasets", "ncp", "cluster", "bench", "lint")


@pytest.mark.parametrize("package", PACKAGES)
def test_every_public_name_is_importable(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} must declare a nonempty __all__"
    assert sorted(set(exported)) == sorted(exported), (
        f"{package}.__all__ contains duplicates"
    )
    for name in exported:
        assert getattr(module, name, None) is not None, (
            f"{package}.__all__ exports {name!r} but the attribute is "
            "missing or None"
        )


@pytest.mark.parametrize("package", PACKAGES)
def test_every_public_name_has_a_docstring(package):
    """Docs satellite: the public surface must explain itself.

    Every documentable object (module, class, function, method) exported
    by a package's ``__all__`` needs a non-empty docstring; plain data
    exports (``__version__`` and similar constants) are exempt.
    """
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        documentable = (
            inspect.ismodule(obj)
            or inspect.isclass(obj)
            or inspect.isroutine(obj)
        )
        if not documentable:
            continue
        doc = inspect.getdoc(obj)
        if not doc or not doc.strip():
            undocumented.append(name)
    assert not undocumented, (
        f"{package}.__all__ exports undocumented names: {undocumented}"
    )


def test_every_cli_subcommand_documents_itself():
    """Docs satellite: `repro <cmd> --help` must be useful for all cmds."""
    parser = build_parser()
    assert parser.description and parser.description.strip()
    assert set(parser.repro_subparsers) == set(SUBCOMMANDS)
    for name, subparser in parser.repro_subparsers.items():
        assert subparser.description and subparser.description.strip(), (
            f"subcommand {name!r} has no description"
        )
        for action in subparser._actions:
            assert action.help and action.help.strip(), (
                f"subcommand {name!r} option {action.dest!r} has no help"
            )
        # Every subcommand resolves to a documented handler.
        handler = subparser.get_default("run")
        assert handler is not None and inspect.getdoc(handler), name


def test_every_registered_dynamics_instantiates():
    graph = ring_of_cliques(4, 5)
    kinds = registered_dynamics()
    assert set(kinds) >= {"ppr", "hk", "walk"}
    for key, kind in kinds.items():
        spec = kind.default_spec()
        assert get_dynamics(spec) is kind, key
        assert spec.default_epsilons, key
        assert spec.grid_size(spec.default_epsilons) >= 1, key

        grid = DiffusionGrid(spec)
        assert grid.key == key
        assert grid.resolved_epsilons() == tuple(spec.default_epsilons)

        local = kind.local_spec(graph)
        assert get_dynamics(local) is kind, key
        # A local spec must be a usable single point for every swept axis.
        for axis, values in local.grid_axes().items():
            assert len(values) == 1, (key, axis)


def test_every_registered_dynamics_yields_columns():
    graph = ring_of_cliques(4, 5)
    for key, kind in registered_dynamics().items():
        spec = kind.default_spec()
        columns = list(
            spec.iter_columns(
                graph, [0], epsilons=(1e-3,), backend="numpy"
            )
        )
        assert len(columns) == spec.grid_size((1e-3,)), key
        assert all(column.shape == (graph.num_nodes,) for column in columns)


def test_every_registered_backend_instantiates():
    """CI satellite: the public-api-smoke job exercises every backend.

    Each registry entry must resolve by key and by every alias, answer
    ``available()``, describe itself, and drive a real diffusion-grid
    drain plus a sweep scan end to end (falling back where needed —
    the numba entry must work whether or not numba is importable).
    """
    import warnings

    import numpy as np

    from repro.backends import get_backend, registered_backends
    from repro.partition.sweep import sweep_cut

    graph = ring_of_cliques(4, 5)
    backends = registered_backends()
    assert set(backends) >= {"numpy", "scalar", "numba"}
    for key, backend in backends.items():
        assert get_backend(key) is backend, key
        for alias in backend.aliases:
            assert get_backend(alias) is backend, (key, alias)
        assert backend.description.strip(), key
        assert backend.available() in (True, False), key

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            columns = list(backend.ppr_grid(
                graph, [0], alphas=(0.1,), epsilons=(1e-3,)
            ))
            assert len(columns) == 1 and columns[0].shape == (
                graph.num_nodes,
            ), key

            scores = np.arange(graph.num_nodes, 0, -1, dtype=float)
            cut = sweep_cut(graph, scores, backend=key)
            assert 0.0 <= cut.conductance <= 1.0, key


def test_every_registered_executor_instantiates():
    """CI satellite: the public-api-smoke job exercises every executor.

    Each registry entry must resolve by key and by every alias, describe
    itself, build a default spec with a CLI token and JSON-able params,
    and drive a real (tiny) chunk plan end to end through
    :func:`~repro.execution.execute_chunks` with results identical to
    the serial reference.
    """
    from repro.execution import (
        build_executor,
        execute_chunks,
        get_executor,
        registered_executors,
        RetryPolicy,
    )
    from repro.dynamics import PPR
    from repro.ncp.runner import _evaluate_chunk, _grid_params, plan_chunks

    graph = ring_of_cliques(4, 5)
    grid = DiffusionGrid(
        PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=2, seed=0
    )
    chunks = plan_chunks(
        grid.dynamics, [0, 5], _grid_params(grid, graph),
        seeds_per_chunk=1,
    )
    policy = RetryPolicy(backoff_seconds=0.0, straggler_factor=None)
    reference = None
    executors = registered_executors()
    assert set(executors) >= {"serial", "process", "chaos"}
    for key, kind in executors.items():
        assert get_executor(key) is kind, key
        for alias in kind.aliases:
            assert get_executor(alias) is kind, (key, alias)
        assert kind.description.strip(), key
        spec = kind.spec_type()
        assert isinstance(spec.token(), str) and spec.token(), key
        assert isinstance(spec.params(), dict), key

        instance, _, _ = build_executor(
            key, graph=graph, evaluate=_evaluate_chunk, num_workers=1,
        )
        outcome = execute_chunks(instance, chunks, retry=policy)
        signature = {
            index: [
                (c.nodes.tobytes(), c.conductance, c.method)
                for c in candidates
            ]
            for index, candidates in outcome.results.items()
        }
        if reference is None:
            reference = signature
        assert signature == reference, key


def test_every_registered_refiner_instantiates():
    """CI satellite: the public-api-smoke job instantiates every refiner.

    Each registry entry must produce a default spec that round-trips
    through the registry, carries a deterministic token, rebuilds from
    its own params, and composes into a :class:`Pipeline`.
    """
    graph = ring_of_cliques(4, 5)
    kinds = registered_refiners()
    assert set(kinds) >= {"mqi", "flow", "mov"}
    for key, kind in kinds.items():
        spec = kind.default_spec()
        assert get_refiner(spec) is kind, key
        assert get_refiner(key) is kind, key
        for alias in kind.aliases:
            assert get_refiner(alias) is kind, (key, alias)
        assert spec.token().startswith(f"{key}("), key
        assert kind.spec_type(**dict(spec.params())) == spec, key
        assert kind.description.strip(), key

        pipeline = Pipeline("ppr", refiners=(spec,))
        assert pipeline.refiners == (spec,), key
        assert pipeline.refiner_tokens() == (spec.token(),), key

        # Every refiner honors the registry-wide invariant on a real set.
        from repro.refine import apply_refiners

        trace = apply_refiners(graph, list(range(5)), (spec,))
        assert trace.final_conductance <= trace.initial_conductance + 1e-9
        assert 0 < trace.nodes.size < graph.num_nodes, key


def test_every_registered_lint_rule_instantiates(capsys):
    """CI satellite: the public-api-smoke job exercises every lint rule.

    Each registry entry must resolve by key, code, and every alias,
    describe itself, run its visitor over a trivial module without
    findings, appear in ``repro lint --list``, and the linter must exit
    0 over the package source with the committed baseline.
    """
    from pathlib import Path

    from repro.analysis import (
        get_rule,
        lint_paths,
        lint_source,
        load_baseline,
        registered_rules,
    )
    from repro.cli import main

    rules = registered_rules()
    assert set(rules) >= {
        "no-stringly-dispatch",
        "cache-version-discipline",
        "determinism-hazards",
        "exception-policy",
        "shim-policy",
        "numba-purity",
    }
    for key, rule in rules.items():
        assert get_rule(key) is rule, key
        assert get_rule(rule.code) is rule, key
        for alias in rule.aliases:
            assert get_rule(alias) is rule, (key, alias)
        assert rule.description.strip(), key
        assert lint_source("VALUE = 1\n", rules=(rule,)) == [], key

    assert main(["lint", "--list"]) == 0
    listing = capsys.readouterr().out
    for key, rule in rules.items():
        assert key in listing and rule.code in listing, key

    # The merged tree lints clean: `python -m repro lint src/` exits 0.
    repo_root = Path(__file__).resolve().parents[1]
    baseline = load_baseline(repo_root / "lint-baseline.json")
    report = lint_paths([repo_root / "src"], baseline=baseline or None)
    assert report.ok, [f.format_human() for f in report.findings]


def test_facade_and_subpackage_exports_agree():
    import repro
    import repro.api as api

    # The facade re-exports the registry objects, not copies.
    assert api.get_dynamics("ppr") is repro.get_dynamics("ppr")
    assert api.canonical_dynamics() == repro.canonical_dynamics()
    assert api.PPR is repro.PPR
    assert api.DiffusionGrid is repro.DiffusionGrid
    assert api.get_refiner("mqi") is repro.get_refiner("mqi")
    assert api.MQI is repro.MQI
    assert api.Pipeline is repro.Pipeline
    assert api.get_backend("numpy") is repro.get_backend("numpy")
    assert api.EngineBackend is repro.EngineBackend
    assert api.registered_backends() == repro.registered_backends()
