"""The EngineBackend registry and its per-backend parity harness.

Covers the registry contract (canonical names, aliases, did-you-mean
errors, third-party registration), the oracle harness — every registered
backend is parity-tested against the ``numpy`` reference on the
whiskered-expander and AtP-DBLP reference graphs for all three canonical
dynamics — the numba-absent fallback path, and the runner's per-backend
cache-key / worker-count guarantees.

Registering a new backend is enough to enroll it here: the parity and
worker-identity tests parametrize over ``registered_backends()``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backends import (
    EngineBackend,
    UnknownBackendError,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend_name,
    unregister_backend,
)
from repro.datasets import load_graph
from repro.dynamics import DiffusionGrid, HeatKernel, LazyWalk, PPR
from repro.exceptions import InvalidParameterError
from repro.ncp.profile import best_per_size_bucket, cluster_ensemble_ncp
from repro.ncp.runner import GridChunk, _chunk_cache_key, run_ncp_ensemble


def candidate_signature(candidates):
    """Order-sensitive exact signature of a candidate ensemble."""
    return [
        (c.nodes.tobytes(), c.conductance, c.method) for c in candidates
    ]


def _quiet_ensemble(graph, grid):
    """Run one ensemble with backend fallback warnings suppressed."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return cluster_ensemble_ncp(graph, grid)


def _delegating_backend(key, aliases=()):
    """A third-party backend that borrows the numpy kernels."""
    reference = get_backend("numpy")
    return EngineBackend(
        key=key,
        description="test double delegating every kernel to numpy",
        aliases=aliases,
        ppr_grid=reference.ppr_grid,
        hk_grid=reference.hk_grid,
        ppr_push=reference.ppr_push,
        hk_push=reference.hk_push,
        walk_step=reference.walk_step,
        prefix_scan=reference.prefix_scan,
    )


class TestRegistry:
    def test_canonical_names_present(self):
        assert set(registered_backends()) >= {"numpy", "scalar", "numba"}

    def test_legacy_vocabulary_resolves_as_aliases(self):
        assert resolve_backend_name("batched") == "numpy"
        assert resolve_backend_name("vectorized") == "numpy"
        assert resolve_backend_name("scalar") == "scalar"
        assert resolve_backend_name("jit") == "numba"

    def test_resolution_normalizes_case_and_whitespace(self):
        assert resolve_backend_name(" NumPy ") == "numpy"
        assert resolve_backend_name("SCALAR") == "scalar"
        assert resolve_backend_name(" Jit ") == "numba"

    def test_resolve_accepts_backend_instance(self):
        backend = get_backend("scalar")
        assert resolve_backend_name(backend) == "scalar"
        assert get_backend(backend) is backend

    def test_unknown_backend_error_type_and_suggestion(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("numpyy")
        assert isinstance(excinfo.value, InvalidParameterError)
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, KeyError)
        assert "did you mean 'numpy'" in str(excinfo.value)

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            resolve_backend_name("gpu")
        message = str(excinfo.value)
        assert "numpy" in message and "scalar" in message

    def test_register_unregister_roundtrip(self, whiskered):
        backend = _delegating_backend("mirror", aliases=("looking_glass",))
        register_backend(backend)
        try:
            assert resolve_backend_name("mirror") == "mirror"
            assert resolve_backend_name("looking-glass") == "mirror"
            grid = dict(
                dynamics=PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=3,
                seed=0,
            )
            mirrored = cluster_ensemble_ncp(
                whiskered, DiffusionGrid(backend="mirror", **grid)
            )
            reference = cluster_ensemble_ncp(
                whiskered, DiffusionGrid(backend="numpy", **grid)
            )
            assert candidate_signature(mirrored) == candidate_signature(
                reference
            )
        finally:
            unregister_backend("mirror")
        with pytest.raises(UnknownBackendError):
            resolve_backend_name("mirror")
        with pytest.raises(UnknownBackendError):
            resolve_backend_name("looking_glass")

    def test_registration_collisions_are_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_backend(_delegating_backend("numpy"))
        with pytest.raises(InvalidParameterError):
            register_backend(_delegating_backend("mine", aliases=("jit",)))
        # Not an EngineBackend at all.
        with pytest.raises(InvalidParameterError):
            register_backend("numpy")

    def test_overwrite_replaces_previous_registration(self):
        original = get_backend("numpy")
        replacement = _delegating_backend(
            "numpy", aliases=original.aliases
        )
        register_backend(replacement, overwrite=True)
        try:
            assert get_backend("numpy") is replacement
        finally:
            register_backend(original, overwrite=True)
        assert get_backend("numpy") is original

    def test_builtin_backends_answer_available(self):
        assert get_backend("numpy").available() is True
        assert get_backend("scalar").available() is True
        assert get_backend("numba").available() in (True, False)


# One modest grid per canonical dynamics: enough seeds to cover whisker
# and core candidates without making the scalar oracle runs slow.
PARITY_SPECS = {
    "ppr": PPR(alpha=(0.05, 0.15)),
    "hk": HeatKernel(t=(2.0, 8.0)),
    "walk": LazyWalk(steps=(4, 16)),
}


@pytest.fixture(params=["whiskered", "atp"])
def parity_graph(request, whiskered):
    if request.param == "whiskered":
        return whiskered
    return load_graph("atp")


class TestBackendParityHarness:
    """Every registered backend against the numpy reference.

    The parametrization reads the registry, so a newly registered
    backend is parity-tested here with no harness changes.  The heat
    kernel and the lazy walk reproduce the reference candidate for
    candidate (their kernels agree to summation order); PPR push
    schedules agree only within the eps*d guarantee, so its ensembles
    are compared through the bucketed NCP profile, matching the
    long-standing engine-parity convention.
    """

    @pytest.mark.parametrize("backend", sorted(registered_backends()))
    @pytest.mark.parametrize("dynamics", sorted(PARITY_SPECS))
    def test_backend_matches_numpy_reference(self, parity_graph, backend,
                                             dynamics):
        # PPR runs at eps=1e-4: the per-candidate divergence between
        # push schedules is bounded by eps*d, so the tighter truncation
        # keeps the bucketed profiles well inside the 0.05 tolerance.
        # Branching on the parametrize value, not runtime dispatch.
        is_ppr = dynamics == "ppr"  # repro-lint: disable=stringly
        epsilons = (1e-4,) if is_ppr else (1e-3,)
        base = dict(epsilons=epsilons, num_seeds=4, seed=0)
        spec = PARITY_SPECS[dynamics]
        got = _quiet_ensemble(
            parity_graph, DiffusionGrid(spec, backend=backend, **base)
        )
        reference = _quiet_ensemble(
            parity_graph, DiffusionGrid(spec, backend="numpy", **base)
        )
        assert len(got) > 0
        # PPR candidates carry the historical "spectral" method label.
        label = "spectral" if is_ppr else dynamics
        assert all(c.method == label for c in got)
        if is_ppr:
            ours = best_per_size_bucket(got, num_buckets=6)
            theirs = best_per_size_bucket(reference, num_buckets=6)
            finite = np.isfinite(ours.best_conductance)
            assert np.array_equal(
                finite, np.isfinite(theirs.best_conductance)
            )
            assert np.allclose(
                ours.best_conductance[finite],
                theirs.best_conductance[finite],
                atol=0.05,
            )
        else:
            assert candidate_signature(got) == candidate_signature(
                reference
            )

    @pytest.mark.parametrize("backend", sorted(registered_backends()))
    def test_sweep_scan_is_exact_for_every_backend(self, whiskered,
                                                   backend):
        from repro.partition.sweep import sweep_cut

        rng = np.random.default_rng(5)
        scores = rng.random(whiskered.num_nodes)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            got = sweep_cut(whiskered, scores, backend=backend)
        reference = sweep_cut(whiskered, scores, backend="numpy")
        assert np.array_equal(got.nodes, reference.nodes)
        assert got.conductance == reference.conductance
        assert got.volume == reference.volume


class TestNumbaFallback:
    @pytest.fixture
    def absent_numba(self, monkeypatch):
        """Force the numba import to fail and reset the fallback state."""
        from repro.backends import _numba

        def refuse():
            raise ImportError("numba disabled for this test")

        saved = dict(_numba._STATE)
        monkeypatch.setattr(_numba, "_import_numba", refuse)
        _numba._STATE.update(
            checked=False, module=None, kernels=None, warned=False
        )
        yield _numba
        _numba._STATE.update(saved)

    def test_fallback_warns_exactly_once_and_matches_numpy(
            self, whiskered, absent_numba):
        grid = dict(
            dynamics=PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=3,
            seed=0,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = cluster_ensemble_ncp(
                whiskered, DiffusionGrid(backend="numba", **grid)
            )
            second = cluster_ensemble_ncp(
                whiskered, DiffusionGrid(backend="numba", **grid)
            )
        runtime = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime) == 1
        assert "falling back" in str(runtime[0].message)
        assert "pip install repro[jit]" in str(runtime[0].message)

        reference = cluster_ensemble_ncp(
            whiskered, DiffusionGrid(backend="numpy", **grid)
        )
        assert candidate_signature(first) == candidate_signature(reference)
        assert candidate_signature(second) == candidate_signature(reference)

    def test_probe_reports_unavailable_without_warning(self,
                                                       absent_numba):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert get_backend("numba").available() is False
            assert absent_numba.numba_available() is False

    def test_fallback_sweep_and_walk_match_numpy(self, whiskered,
                                                 absent_numba):
        from repro.diffusion.seeds import indicator_seed
        from repro.diffusion.truncated_walk import truncated_lazy_walk
        from repro.partition.sweep import sweep_cut

        rng = np.random.default_rng(3)
        scores = rng.random(whiskered.num_nodes)
        seed = indicator_seed(whiskered, [0])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            jit_cut = sweep_cut(whiskered, scores, backend="numba")
            jit_walk = truncated_lazy_walk(
                whiskered, seed, 8, epsilon=1e-3, backend="numba"
            )
        ref_cut = sweep_cut(whiskered, scores, backend="numpy")
        ref_walk = truncated_lazy_walk(
            whiskered, seed, 8, epsilon=1e-3, backend="numpy"
        )
        assert np.array_equal(jit_cut.nodes, ref_cut.nodes)
        assert jit_cut.conductance == ref_cut.conductance
        assert np.array_equal(jit_walk.final, ref_walk.final)
        assert jit_walk.dropped_mass == ref_walk.dropped_mass


class TestRunnerBackendGuarantees:
    def test_cache_keys_differ_per_backend(self):
        params = (("alphas", (0.1,)), ("epsilons", (1e-3,)))
        keys = {
            _chunk_cache_key(
                "fp", GridChunk(0, "ppr", (0, 1), params, backend=name)
            )
            for name in sorted(registered_backends())
        }
        assert len(keys) == len(registered_backends())

    @pytest.mark.parametrize("backend", sorted(registered_backends()))
    def test_worker_pool_is_byte_identical_per_backend(self, whiskered,
                                                       backend):
        grid = DiffusionGrid(
            PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=4, seed=0,
            backend=backend,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            serial = run_ncp_ensemble(whiskered, grid, seeds_per_chunk=2)
            pooled = run_ncp_ensemble(
                whiskered, grid, seeds_per_chunk=2, num_workers=2
            )
        assert candidate_signature(serial.candidates) == (
            candidate_signature(pooled.candidates)
        )
        assert serial.manifest()["grid"]["backend"] == (
            resolve_backend_name(backend)
        )
