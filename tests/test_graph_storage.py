"""Tests for the binary ``.reprograph`` on-disk graph format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.build import from_edges, union_disjoint
from repro.graph.generators import star_graph
from repro.graph.storage import (
    BINARY_SUFFIX,
    HEADER_SIZE,
    peek_binary_header,
    read_binary,
    write_binary,
)
from repro.ncp.runner import graph_fingerprint


def roundtrip(graph, tmp_path, **kwargs):
    path = tmp_path / f"g{BINARY_SUFFIX}"
    write_binary(graph, path, **kwargs)
    return read_binary(path)


class TestRoundTrip:
    def test_weighted_roundtrip(self, weighted_triangle, tmp_path):
        rebuilt = roundtrip(weighted_triangle, tmp_path)
        assert rebuilt == weighted_triangle

    def test_suite_graph_roundtrip(self, whiskered, tmp_path):
        rebuilt = roundtrip(whiskered, tmp_path)
        assert np.array_equal(rebuilt.indptr, whiskered.indptr)
        assert np.array_equal(rebuilt.indices, whiskered.indices)
        assert np.array_equal(rebuilt.weights, whiskered.weights)

    def test_isolated_nodes_survive(self, tmp_path):
        g = from_edges(6, [(0, 1)])  # nodes 2..5 isolated
        rebuilt = roundtrip(g, tmp_path)
        assert rebuilt.num_nodes == 6
        assert rebuilt.num_edges == 1
        assert rebuilt.degrees[2:].sum() == 0

    def test_empty_graph_roundtrip(self, tmp_path):
        g = from_edges(0, [])
        rebuilt = roundtrip(g, tmp_path)
        assert rebuilt.num_nodes == 0 and rebuilt.num_edges == 0

    def test_edgeless_nodes_roundtrip(self, tmp_path):
        g = from_edges(4, [])
        rebuilt = roundtrip(g, tmp_path)
        assert rebuilt.num_nodes == 4 and rebuilt.num_edges == 0

    def test_no_mmap_matches_mmap(self, planted, tmp_path):
        path = tmp_path / f"g{BINARY_SUFFIX}"
        write_binary(planted, path)
        mapped = read_binary(path, mmap=True)
        loaded = read_binary(path, mmap=False)
        assert mapped == loaded == planted

    def test_int64_indices_forced(self, ring, tmp_path):
        rebuilt = roundtrip(ring, tmp_path, indices_dtype=np.int64)
        assert rebuilt.indices.dtype == np.int64
        assert rebuilt == ring

    def test_default_indices_are_int32(self, ring, tmp_path):
        rebuilt = roundtrip(ring, tmp_path)
        assert rebuilt.indices.dtype == np.int32
        assert rebuilt == ring

    def test_float_weights_exact(self, tmp_path):
        weights = [0.1, 1 / 3, 7.25e-9]
        g = from_edges(3, [(0, 1), (1, 2), (0, 2)], weights)
        rebuilt = roundtrip(g, tmp_path)
        assert np.array_equal(rebuilt.weights, g.weights)


class TestHeader:
    def test_peek_reports_sizes(self, planted, tmp_path):
        path = tmp_path / f"g{BINARY_SUFFIX}"
        write_binary(planted, path)
        header = peek_binary_header(path)
        assert header["num_nodes"] == planted.num_nodes
        assert header["num_edges"] == planted.num_edges
        assert header["num_arcs"] == 2 * planted.num_edges
        assert header["indices_dtype"] == "int32"
        assert path.stat().st_size == header["file_size"]

    def test_truncated_header_raises(self, tmp_path):
        path = tmp_path / f"g{BINARY_SUFFIX}"
        path.write_bytes(b"REPROGRF\x01")
        with pytest.raises(GraphError, match="truncated header"):
            peek_binary_header(path)

    def test_truncated_payload_raises(self, ring, tmp_path):
        path = tmp_path / f"g{BINARY_SUFFIX}"
        write_binary(ring, path)
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(GraphError, match="truncated payload"):
            read_binary(path)

    def test_bad_magic_raises(self, ring, tmp_path):
        path = tmp_path / f"g{BINARY_SUFFIX}"
        write_binary(ring, path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTAGRAF"
        path.write_bytes(bytes(data))
        with pytest.raises(GraphError, match="bad magic"):
            read_binary(path)

    def test_unsupported_version_raises(self, ring, tmp_path):
        path = tmp_path / f"g{BINARY_SUFFIX}"
        write_binary(ring, path)
        data = bytearray(path.read_bytes())
        data[8] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(GraphError, match="unsupported format version"):
            read_binary(path)

    def test_unknown_dtype_code_raises(self, ring, tmp_path):
        path = tmp_path / f"g{BINARY_SUFFIX}"
        write_binary(ring, path)
        data = bytearray(path.read_bytes())
        data[32] = 42  # indptr dtype code
        path.write_bytes(bytes(data))
        with pytest.raises(GraphError, match="unknown dtype code"):
            read_binary(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError, match="unreadable"):
            peek_binary_header(tmp_path / f"missing{BINARY_SUFFIX}")

    def test_corrupt_indptr_raises(self, tmp_path):
        g = from_edges(3, [(0, 1), (1, 2)])
        path = tmp_path / f"g{BINARY_SUFFIX}"
        write_binary(g, path)
        data = bytearray(path.read_bytes())
        # indptr[0] lives right after the header; make it nonzero.
        data[HEADER_SIZE] = 1
        path.write_bytes(bytes(data))
        with pytest.raises(GraphError, match="indptr must start at 0"):
            read_binary(path)

    def test_bad_dtype_request_raises(self, ring, tmp_path):
        with pytest.raises(GraphError, match="int32 or int64"):
            write_binary(ring, tmp_path / "g", indices_dtype=np.float64)


class TestMemmapSemantics:
    def test_loaded_arrays_read_only(self, ring, tmp_path):
        rebuilt = roundtrip(ring, tmp_path)
        with pytest.raises(ValueError):
            rebuilt.weights[0] = 5.0

    def test_kernels_run_on_memmap(self, whiskered, tmp_path):
        from repro.diffusion import batch_ppr_push
        from repro.diffusion.seeds import degree_weighted_indicator_seed

        rebuilt = roundtrip(whiskered, tmp_path)
        seed = degree_weighted_indicator_seed(rebuilt, [0])
        native = batch_ppr_push(
            whiskered,
            [degree_weighted_indicator_seed(whiskered, [0])],
            alphas=(0.1,), epsilons=(1e-3,),
        )
        mapped = batch_ppr_push(
            rebuilt, [seed], alphas=(0.1,), epsilons=(1e-3,)
        )
        np.testing.assert_array_equal(
            native.approximation, mapped.approximation
        )


class TestFingerprintFraming:
    def test_dtype_invariant(self, whiskered, tmp_path):
        rebuilt = roundtrip(whiskered, tmp_path)
        assert rebuilt.indices.dtype == np.int32
        assert whiskered.indices.dtype == np.int64
        assert graph_fingerprint(rebuilt) == graph_fingerprint(whiskered)

    def test_structure_sensitive(self):
        a = from_edges(3, [(0, 1), (1, 2)])
        b = from_edges(3, [(0, 1), (0, 2)])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_weight_sensitive(self):
        a = from_edges(2, [(0, 1)], [1.0])
        b = from_edges(2, [(0, 1)], [2.0])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_isolated_tail_nodes_change_fingerprint(self):
        # Same edges, different num_nodes: only indptr's length differs.
        a = from_edges(2, [(0, 1)])
        b = from_edges(3, [(0, 1)])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_framing_blocks_cross_array_aliasing(self):
        # A star's indices all point at the hub; without per-array
        # framing a shifted boundary between indices and weights could
        # produce colliding byte streams for different graphs.
        a = star_graph(4)
        b = star_graph(5)
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestLoadAnyGraphBinary:
    def test_suite_bridge_reads_binary(self, whiskered, tmp_path):
        from repro.datasets import load_any_graph

        path = tmp_path / f"w{BINARY_SUFFIX}"
        write_binary(whiskered, path)
        loaded = load_any_graph(str(path))
        assert loaded == whiskered

    def test_disconnected_binary_warns_and_compacts(self, tmp_path):
        from repro.datasets import load_any_graph

        two = union_disjoint(
            from_edges(3, [(0, 1), (1, 2), (0, 2)]),
            from_edges(2, [(0, 1)]),
        )
        path = tmp_path / f"two{BINARY_SUFFIX}"
        write_binary(two, path)
        with pytest.warns(UserWarning, match="disconnected"):
            loaded = load_any_graph(str(path))
        assert loaded.num_nodes == 3
