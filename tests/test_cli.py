"""Golden tests for the ``python -m repro`` workbench CLI.

Every subcommand runs in-process (``repro.cli.main``) against the
``barbell``/``atp`` suite graphs in a tmpdir; manifests are schema-
checked; and the headline reproducibility guarantee is pinned: ``ncp``
output is byte-identical for ``--workers 2`` vs ``--workers 1``, and a
replay from the manifest's recorded ``replay_argv`` reproduces
``candidates.csv`` byte for byte — including through an exported
external edge-list file instead of the suite name.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.cli.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    check_manifest,
    load_manifest,
)
from repro.cli.specs import (
    parse_dynamics_list,
    parse_dynamics_spec,
    parse_executor_spec,
)
from repro.datasets import UnknownGraphError, load_any_graph, load_graph
from repro.dynamics import HeatKernel, LazyWalk, PPR, UnknownDynamicsError
from repro.exceptions import InvalidParameterError
from repro.graph.io import write_edge_list
from repro.ncp.runner import graph_fingerprint

# Small-but-real workloads: barbell is instant, atp is the Figure 1
# reference (kept tiny via the seed count).
NCP_ARGS = ["--dynamics", "ppr:alpha=0.1,eps=1e-3", "--num-seeds", "4",
            "--seed", "0"]


def run_cli(*argv):
    return main(list(argv))


class TestDatasets:
    def test_listing_covers_every_suite_graph(self, capsys):
        assert run_cli("datasets") == 0
        out = capsys.readouterr().out
        for name in ("atp", "barbell", "whiskered", "roach"):
            assert name in out

    def test_markdown_listing_is_a_table(self, capsys):
        assert run_cli("datasets", "--markdown") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("| name |")
        assert set(lines[1].replace(" ", "")) <= set("|-:")
        assert all(line.startswith("|") for line in lines)

    def test_describe(self, capsys):
        assert run_cli("datasets", "--describe", "barbell") == 0
        out = capsys.readouterr().out
        assert "planted cut" in out

    def test_export_roundtrips_and_writes_manifest(self, tmp_path, capsys):
        out = tmp_path / "barbell.tsv"
        assert run_cli("datasets", "--export", "barbell",
                       "--out", str(out)) == 0
        exported = load_any_graph(out)
        reference = load_graph("barbell")
        assert graph_fingerprint(exported) == graph_fingerprint(reference)
        # Named after the exported file, so it can never clobber another
        # run's manifest.json in a shared directory.
        manifest = load_manifest(tmp_path / "barbell.tsv.manifest.json")
        assert manifest["command"] == "datasets"
        assert manifest["graph"]["kind"] == "suite"
        assert not (tmp_path / "manifest.json").exists()


class TestManifestSchema:
    def test_every_manifest_writing_subcommand(self, tmp_path, capsys):
        jobs = {
            "ncp": ["ncp", "--graph", "barbell", *NCP_ARGS],
            "cluster": ["cluster", "--graph", "barbell", "--seeds", "0",
                        "--dynamics", "ppr:alpha=0.1,eps=1e-3"],
            "bench": ["bench", "--graph", "barbell", "--num-seeds", "2"],
        }
        for name, argv in jobs.items():
            out = tmp_path / name
            assert run_cli(*argv, "--out", str(out)) == 0, name
            manifest = load_manifest(out)  # check_manifest inside
            assert manifest["schema"] == MANIFEST_SCHEMA
            assert manifest["command"] == name
            assert manifest["graph"]["fingerprint"] == graph_fingerprint(
                load_graph("barbell")
            )
            assert manifest["wall_seconds"] >= 0
            assert manifest["replay_argv"][0] == name
            for output in manifest["outputs"]:
                assert (out / output).is_file(), (name, output)

    def test_check_manifest_rejects_foreign_documents(self):
        with pytest.raises(InvalidParameterError):
            check_manifest({"schema": MANIFEST_SCHEMA})
        with pytest.raises(InvalidParameterError):
            check_manifest([1, 2, 3])


class TestNCPReproducibility:
    @pytest.mark.parametrize("graph", ["barbell", "atp"])
    def test_workers_2_is_byte_identical_to_workers_1(self, graph,
                                                      tmp_path, capsys):
        for workers, name in (("1", "w1"), ("2", "w2")):
            assert run_cli("ncp", "--graph", graph, *NCP_ARGS,
                           "--workers", workers,
                           "--out", str(tmp_path / name)) == 0
        one = (tmp_path / "w1" / "candidates.csv").read_bytes()
        two = (tmp_path / "w2" / "candidates.csv").read_bytes()
        assert one == two
        assert len(one) > 0

    def test_manifest_replay_reproduces_candidates(self, tmp_path, capsys):
        first = tmp_path / "first"
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--out", str(first)) == 0
        manifest = load_manifest(first)
        replay = tmp_path / "replay"
        assert run_cli(*manifest["replay_argv"], "--workers", "2",
                       "--out", str(replay)) == 0
        assert (first / "candidates.csv").read_bytes() == \
            (replay / "candidates.csv").read_bytes()

    def test_external_edge_list_end_to_end(self, tmp_path, capsys):
        # A non-suite graph file goes through the whole pipeline and
        # produces the same ensemble as the suite graph it was dumped
        # from (identical CSR bytes -> identical fingerprint).
        edges = tmp_path / "external.tsv"
        write_edge_list(load_graph("barbell"), edges)
        by_file = tmp_path / "by_file"
        by_name = tmp_path / "by_name"
        assert run_cli("ncp", "--graph", str(edges), *NCP_ARGS,
                       "--out", str(by_file)) == 0
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--out", str(by_name)) == 0
        assert (by_file / "candidates.csv").read_bytes() == \
            (by_name / "candidates.csv").read_bytes()
        manifest = load_manifest(by_file)
        assert manifest["graph"]["kind"] == "file"
        assert manifest["graph"]["fingerprint"] == graph_fingerprint(
            load_graph("barbell")
        )

    def test_csv_has_expected_shape(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--out", str(out)) == 0
        lines = (out / "candidates.csv").read_text().splitlines()
        assert lines[0] == "dynamics,method,size,conductance,nodes"
        dynamics, method, size, phi, nodes = lines[1].split(",")
        assert dynamics == "ppr" and method == "spectral"
        assert int(size) == len(nodes.split())
        assert 0.0 <= float(phi) <= 1.0
        manifest = load_manifest(out)
        run_record = manifest["runs"][0]
        assert run_record["dynamics"] == "ppr"
        assert run_record["grid"]["params"]["alphas"] == [0.1]
        assert run_record["grid"]["epsilons"] == [1e-3]
        assert len(run_record["seed_nodes"]) == 4
        assert run_record["num_candidates"] == len(lines) - 1


class TestExecutorAndResume:
    """The ``--executor`` flag and crash-then-resume via ``--resume``."""

    def test_every_builtin_executor_is_byte_identical(self, tmp_path,
                                                      capsys):
        outputs = {}
        for token, name in (
            ("serial", "serial"),
            ("process", "process"),
            ("chaos:seed=3,kills=2,delay_seconds=0", "chaos"),
        ):
            assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                           "--executor", token, "--workers", "2",
                           "--out", str(tmp_path / name)) == 0
            outputs[name] = (
                tmp_path / name / "candidates.csv"
            ).read_bytes()
        assert outputs["serial"] == outputs["process"] == outputs["chaos"]
        assert len(outputs["serial"]) > 0

    def test_manifest_records_executor_and_status(self, tmp_path, capsys):
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--executor", "serial",
                       "--out", str(tmp_path)) == 0
        manifest = load_manifest(tmp_path)
        assert manifest["status"] == "complete"
        assert manifest["arguments"]["executor"] == "serial"
        assert manifest["runs"][0]["executor"]["name"] == "serial"
        assert {
            record["completed"] for record in manifest["runs"][0]["chunks"]
        } == {True}
        # A replayable executor is pinned in replay_argv ...
        argv = manifest["replay_argv"]
        assert argv[argv.index("--executor") + 1] == "serial"

    def test_chaos_executor_is_never_in_replay_argv(self, tmp_path,
                                                    capsys):
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--executor", "chaos:seed=1,delay_seconds=0",
                       "--out", str(tmp_path)) == 0
        manifest = load_manifest(tmp_path)
        assert "--executor" not in manifest["replay_argv"]
        assert manifest["arguments"]["executor"].startswith("chaos:")

    @pytest.mark.parametrize("resume_workers", ["0", "2"])
    def test_crash_then_resume_is_byte_identical(self, tmp_path, capsys,
                                                 resume_workers):
        clean = tmp_path / "clean"
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--out", str(clean)) == 0
        crashed = tmp_path / "crashed"
        cache = tmp_path / "cache"
        assert run_cli(
            "ncp", "--graph", "barbell", *NCP_ARGS,
            "--executor", "chaos:seed=5,kills=1,abort_after=1,"
                          "delay_seconds=0",
            "--cache-dir", str(cache), "--out", str(crashed),
        ) == 2
        manifest = load_manifest(crashed)
        assert manifest["status"] == "started"
        assert list(cache.glob("*.npz"))
        assert not (crashed / "candidates.csv").exists()
        assert run_cli("ncp", "--resume", str(crashed),
                       "--workers", resume_workers,
                       "--out", str(crashed)) == 0
        assert (crashed / "candidates.csv").read_bytes() == \
            (clean / "candidates.csv").read_bytes()
        resumed = load_manifest(crashed)
        assert resumed["status"] == "complete"
        assert resumed["runs"][0]["cache_hits"] >= 1

    def test_resume_replays_workload_not_execution_flags(self, tmp_path,
                                                         capsys):
        first = tmp_path / "first"
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--cache-dir", str(tmp_path / "cache"),
                       "--out", str(first)) == 0
        second = tmp_path / "second"
        assert run_cli("ncp", "--resume", str(first),
                       "--out", str(second)) == 0
        assert (first / "candidates.csv").read_bytes() == \
            (second / "candidates.csv").read_bytes()
        # The workload arguments round-tripped through the manifest; the
        # resumed run found every chunk in the original cache.
        resumed = load_manifest(second)
        assert resumed["arguments"]["dynamics"] == \
            load_manifest(first)["arguments"]["dynamics"]
        assert resumed["runs"][0]["cache_hits"] == \
            resumed["runs"][0]["num_chunks"]

    def test_resume_and_graph_are_mutually_exclusive(self, tmp_path,
                                                     capsys):
        assert run_cli("ncp", "--graph", "barbell", "--resume", "x",
                       "--out", str(tmp_path)) == 2
        assert "not both" in capsys.readouterr().err

    def test_graph_or_resume_is_required(self, tmp_path, capsys):
        assert run_cli("ncp", "--out", str(tmp_path)) == 2
        assert "--graph or --resume" in capsys.readouterr().err

    def test_unknown_executor_is_a_usage_error(self, tmp_path, capsys):
        assert run_cli("ncp", "--graph", "barbell", *NCP_ARGS,
                       "--executor", "serail",
                       "--out", str(tmp_path)) == 2
        assert "did you mean 'serial'" in capsys.readouterr().err


class TestCluster:
    @pytest.mark.parametrize("spec", ["ppr:alpha=0.1,eps=1e-3", "hk",
                                      "nibble"])
    def test_cluster_runs_on_atp(self, spec, tmp_path, capsys):
        out = tmp_path / "cluster"
        assert run_cli("cluster", "--graph", "atp", "--seeds", "5",
                       "--dynamics", spec, "--out", str(out)) == 0
        record = json.loads((out / "cluster.json").read_text())
        assert record["size"] == len(record["nodes"])
        assert 0.0 <= record["conductance"] <= 1.0
        assert record["seed_nodes"] == [5]
        manifest = load_manifest(out)
        assert manifest["result"]["conductance"] == record["conductance"]

    def test_grid_valued_spec_is_rejected(self, capsys):
        # ppr with the default (three-point) alpha axis cannot drive a
        # local cluster when the axis comes from explicit params.
        assert run_cli("cluster", "--graph", "barbell", "--seeds", "0",
                       "--dynamics", "ppr:alpha=0.05/0.1/0.15") == 2
        assert "error:" in capsys.readouterr().err


class TestBench:
    def test_bench_writes_report_for_every_dynamics(self, tmp_path,
                                                    capsys):
        out = tmp_path / "bench"
        assert run_cli("bench", "--graph", "barbell", "--num-seeds", "2",
                       "--out", str(out)) == 0
        report = json.loads((out / "BENCH_engine.json").read_text())
        assert set(report["dynamics"]) >= {"ppr", "hk", "walk"}
        for section in report["dynamics"].values():
            assert section["scalar_seconds"] > 0
            assert section["batched_seconds"] > 0
            assert section["num_columns"] > 0


class TestGraphErrors:
    def test_unknown_graph_error_type_and_suggestion(self):
        with pytest.raises(UnknownGraphError) as excinfo:
            load_graph("barbel")
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ValueError)
        assert "did you mean 'barbell'" in str(excinfo.value)

    def test_missing_file_is_distinguished(self, tmp_path):
        with pytest.raises(UnknownGraphError) as excinfo:
            load_any_graph(tmp_path / "missing.tsv")
        assert "does not exist" in str(excinfo.value)

    def test_cli_routes_graph_errors(self, capsys):
        assert run_cli("ncp", "--graph", "barbel", "--dynamics", "ppr",
                       "--out", "unused") == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "did you mean" in err

    def test_cli_routes_dynamics_errors(self, capsys):
        assert run_cli("ncp", "--graph", "barbell", "--dynamics", "nope",
                       "--out", "unused") == 2
        assert "unknown dynamics" in capsys.readouterr().err

    def test_disconnected_external_graph_warns_about_relabeling(
            self, tmp_path):
        edges = tmp_path / "shards.tsv"
        edges.write_text("0\t1\n2\t3\n3\t4\n", encoding="utf-8")
        with pytest.warns(UserWarning, match="relabeled"):
            graph = load_any_graph(edges)
        assert graph.num_nodes == 3  # the {2, 3, 4} component, compacted

    def test_datasets_mode_flags_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["datasets", "--describe", "atp", "--export", "barbell"])
        assert excinfo.value.code == 2

    def test_datasets_out_requires_export(self, capsys):
        assert run_cli("datasets", "--markdown", "--out", "table.md") == 2
        assert "--out only applies to --export" in capsys.readouterr().err


class TestSpecStrings:
    def test_bare_names_and_aliases(self):
        requests = parse_dynamics_list("ppr,heat_kernel,nibble")
        assert [r.key for r in requests] == ["ppr", "hk", "walk"]
        assert all(not r.params for r in requests)

    def test_params_and_epsilons(self):
        request = parse_dynamics_spec("ppr:alpha=0.1,eps=1e-4")
        assert request.spec() == PPR(alpha=0.1)
        assert request.epsilons == (1e-4,)
        grid = request.grid(num_seeds=3, seed=0)
        assert grid.resolved_epsilons() == (1e-4,)

    def test_axis_values_and_ints(self):
        request = parse_dynamics_spec("walk:steps=4/16,walk_alpha=0.7")
        assert request.spec() == LazyWalk(steps=(4, 16), walk_alpha=0.7)
        hk = parse_dynamics_spec("hk:t=5")
        assert hk.spec() == HeatKernel(t=5.0)

    def test_mixed_list_binds_params_to_preceding_spec(self):
        requests = parse_dynamics_list("ppr:alpha=0.1,eps=1e-4,hk:t=5,walk")
        assert [r.key for r in requests] == ["ppr", "hk", "walk"]
        assert requests[0].epsilons == (1e-4,)
        assert requests[1].spec() == HeatKernel(t=5.0)
        assert requests[2].epsilons is None

    def test_executor_specs(self):
        from repro.execution import Chaos, ProcessPool, Serial

        assert parse_executor_spec("serial") == Serial()
        assert parse_executor_spec("pool") == ProcessPool()
        chaos = parse_executor_spec(
            "chaos:seed=3,kills=2,abort_after=4"
        )
        assert chaos == Chaos(seed=3, kills=2, abort_after=4)
        # token() round-trips through the parser.
        assert parse_executor_spec(chaos.token()) == chaos

    def test_executor_spec_errors(self):
        with pytest.raises(InvalidParameterError,
                           match="exactly one executor"):
            parse_executor_spec("serial,process")
        with pytest.raises(InvalidParameterError,
                           match="unknown parameter"):
            parse_executor_spec("chaos:frobnicate=3")
        with pytest.raises(InvalidParameterError,
                           match="did you mean"):
            parse_executor_spec("serail")

    def test_errors(self):
        with pytest.raises(UnknownDynamicsError):
            parse_dynamics_list("frobnicate")
        with pytest.raises(InvalidParameterError):
            parse_dynamics_list("ppr:frob=1")
        with pytest.raises(InvalidParameterError):
            parse_dynamics_list("alpha=0.1")  # param before any name
        with pytest.raises(InvalidParameterError):
            parse_dynamics_list("")
        with pytest.raises(InvalidParameterError):
            parse_dynamics_spec("ppr,hk")  # cluster needs exactly one

    def test_local_spec_uses_registered_default_for_bare_name(self):
        graph = load_graph("barbell")
        request = parse_dynamics_spec("walk")
        local = request.local_spec(graph)
        assert len(local.steps) == 1  # a usable single point


class TestParserHygiene:
    def test_manifest_name_constant(self):
        assert MANIFEST_NAME == "manifest.json"

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_subparser_registry_is_complete(self):
        parser = build_parser()
        assert set(parser.repro_subparsers) == {
            "datasets", "ncp", "cluster", "bench", "lint"
        }
