"""Docs check: README/ARCHITECTURE code blocks reference real names.

Documentation drifts when the API moves under it.  These tests parse
every fenced code block in ``README.md`` and ``docs/ARCHITECTURE.md``:

* every ``repro`` import statement in a python block must actually
  import — the module must exist and every imported name must be an
  attribute of it;
* every python block must at least be syntactically valid Python;
* every ``repro <subcommand>`` / ``python -m repro <subcommand>``
  incantation in a shell block must name a real CLI subcommand.

The CI ``docs-check`` job runs this module on its own.
"""

from __future__ import annotations

import ast
import importlib
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCUMENTS = ("README.md", "docs/ARCHITECTURE.md")

_FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.S)
_CLI_RE = re.compile(r"(?:python -m repro|(?<![\w/.-])repro)\s+(--?\w[\w-]*|\w+)")


def _blocks(document, *, language):
    text = (REPO_ROOT / document).read_text(encoding="utf-8")
    return [
        body
        for fence_language, body in _FENCE_RE.findall(text)
        if fence_language == language
    ]


def _python_blocks(document):
    blocks = _blocks(document, language="python")
    assert blocks, f"{document} has no ```python blocks to check"
    return blocks


@pytest.mark.parametrize("document", DOCUMENTS)
def test_python_blocks_parse(document):
    for i, block in enumerate(_python_blocks(document)):
        try:
            ast.parse(block)
        except SyntaxError as exc:
            pytest.fail(
                f"{document} python block #{i} is not valid Python: {exc}"
            )


@pytest.mark.parametrize("document", DOCUMENTS)
def test_repro_imports_in_code_blocks_resolve(document):
    checked = 0
    for block in _python_blocks(document):
        for node in ast.walk(ast.parse(block)):
            if isinstance(node, ast.ImportFrom):
                if not (node.module or "").startswith("repro"):
                    continue
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{document}: `from {node.module} import "
                        f"{alias.name}` references a missing name"
                    )
                    checked += 1
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro"):
                        importlib.import_module(alias.name)
                        checked += 1
    assert checked > 0, f"{document} code blocks never import from repro"


@pytest.mark.parametrize("document", DOCUMENTS)
def test_cli_incantations_name_real_subcommands(document):
    parser = build_parser()
    known = set(parser.repro_subparsers)
    mentions = []
    for language in ("bash", "sh", "console"):
        for block in _blocks(document, language=language):
            mentions.extend(
                token
                for token in _CLI_RE.findall(block)
                if not token.startswith("-")
            )
    unknown = sorted(set(mentions) - known)
    assert not unknown, (
        f"{document} mentions CLI subcommands that do not exist: "
        f"{unknown} (known: {sorted(known)})"
    )
