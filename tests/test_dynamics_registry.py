"""Tests for the unified dynamics registry (:mod:`repro.dynamics`).

Covers the registry round-trip (spec -> grid params -> spec), the alias
table that heals the historical ``core.framework`` / NCP-runner name
split, grid chunking as a partition of the seed list (hypothesis), and
the extension point: a newly registered dynamics runs through the
sharded NCP runner and the local-cluster driver without touching either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import framework
from repro.dynamics import (
    ApproximateComputation,
    DiffusionGrid,
    DynamicsKind,
    HeatKernel,
    LazyWalk,
    PPR,
    UnknownDynamicsError,
    as_diffusion_grid,
    canonical_dynamics,
    get_dynamics,
    register_dynamics,
    registered_dynamics,
    resolve_dynamics_name,
    unregister_dynamics,
)
from repro.exceptions import InvalidParameterError
from repro.ncp.runner import plan_chunks, run_ncp_ensemble


class TestRegistryLookup:
    def test_canonical_and_alias_spellings_agree(self):
        # The historical framework keys and the runner's short names must
        # resolve to the *same* object.
        assert get_dynamics("ppr") is get_dynamics("pagerank")
        assert get_dynamics("hk") is get_dynamics("heat_kernel")
        assert get_dynamics("walk") is get_dynamics("lazy_walk")
        # Normalization: case / separators.
        assert get_dynamics("Heat Kernel") is get_dynamics("hk")
        assert get_dynamics("Lazy Random Walk") is get_dynamics("walk")

    def test_framework_facade_is_the_same_registry(self):
        # Satellite regression: core.framework.get_dynamics("ppr") used to
        # raise KeyError while the runner rejected "pagerank".
        assert framework.get_dynamics("ppr") is get_dynamics("pagerank")
        assert framework.canonical_dynamics() == canonical_dynamics()
        for kind in framework.canonical_dynamics():
            assert registered_dynamics()[kind.key] is kind

    def test_spec_instances_and_types_resolve(self):
        assert get_dynamics(PPR) is get_dynamics("ppr")
        assert get_dynamics(PPR(alpha=0.3)) is get_dynamics("ppr")
        assert get_dynamics(HeatKernel(t=1.0)) is get_dynamics("hk")
        assert get_dynamics(LazyWalk(steps=3)) is get_dynamics("walk")

    def test_canonical_dynamics_paper_order_and_api(self):
        kinds = canonical_dynamics()
        assert [k.name for k in kinds] == [
            "Heat Kernel", "PageRank", "Lazy Random Walk"
        ]
        assert [k.key for k in kinds] == ["hk", "ppr", "walk"]
        for kind in kinds:
            assert isinstance(kind, ApproximateComputation)
            assert "Problem (5)" in kind.describe()

    def test_unknown_dynamics_error_mro(self):
        with pytest.raises(UnknownDynamicsError) as excinfo:
            get_dynamics("landing")
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, InvalidParameterError)
        with pytest.raises(UnknownDynamicsError):
            get_dynamics(object())

    def test_local_method_aliases(self):
        assert get_dynamics("acl") is get_dynamics("ppr")
        assert get_dynamics("nibble") is get_dynamics("walk")


class TestSpecRoundTrip:
    @pytest.mark.parametrize("key", ["ppr", "hk", "walk"])
    def test_default_spec_round_trips_through_grid_params(self, key):
        kind = get_dynamics(key)
        spec = kind.default_spec()
        rebuilt = kind.spec_type.from_grid_params(dict(spec.grid_params()))
        assert rebuilt == spec
        assert resolve_dynamics_name(rebuilt) == key

    def test_every_registered_dynamics_round_trips(self):
        for key, kind in registered_dynamics().items():
            spec = kind.default_spec()
            rebuilt = kind.spec_type.from_grid_params(
                dict(spec.grid_params())
            )
            assert rebuilt == spec, key
            assert get_dynamics(rebuilt) is kind, key

    def test_custom_axes_round_trip(self):
        for spec in (
            PPR(alpha=(0.02, 0.2)),
            HeatKernel(t=7.5),
            LazyWalk(steps=(2, 8, 32), walk_alpha=0.7),
        ):
            kind = get_dynamics(spec)
            assert kind.spec_type.from_grid_params(
                dict(spec.grid_params())
            ) == spec

    def test_scalar_axes_normalize_to_tuples(self):
        assert PPR(alpha=0.1).alpha == (0.1,)
        assert HeatKernel(t=2.0).t == (2.0,)
        assert LazyWalk(steps=5).steps == (5,)

    def test_axis_validation(self):
        with pytest.raises(InvalidParameterError):
            PPR(alpha=1.5)
        with pytest.raises(InvalidParameterError):
            HeatKernel(t=-1.0)
        with pytest.raises(InvalidParameterError):
            LazyWalk(steps=-1)
        with pytest.raises(InvalidParameterError):
            LazyWalk(walk_alpha=2.0)
        with pytest.raises(InvalidParameterError):
            PPR(alpha=())

    def test_grid_resolves_default_epsilons_per_dynamics(self):
        assert DiffusionGrid(PPR()).resolved_epsilons() == (1e-4, 1e-5)
        assert DiffusionGrid(HeatKernel()).resolved_epsilons() == (1e-3, 1e-4)
        assert DiffusionGrid(LazyWalk()).resolved_epsilons() == (1e-3, 1e-4)

    def test_grid_normalizes_names_kinds_and_specs(self):
        by_name = DiffusionGrid("pagerank")
        by_kind = DiffusionGrid(get_dynamics("ppr"))
        by_spec = DiffusionGrid(PPR())
        assert by_name.dynamics == by_kind.dynamics == by_spec.dynamics
        assert as_diffusion_grid(PPR()).key == "ppr"
        assert as_diffusion_grid(by_name) is by_name


class TestChunkPartition:
    @settings(max_examples=60, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 10_000), max_size=40),
        width=st.integers(1, 11),
        key=st.sampled_from(["ppr", "hk", "walk"]),
    )
    def test_plan_chunks_is_a_partition_of_the_seed_list(
        self, seeds, width, key
    ):
        # No dropped cells, no duplicated cells, deterministic order —
        # for any registered dynamics and any chunk width.
        kind = get_dynamics(key)
        spec = kind.default_spec()
        params = spec.grid_params() + (
            ("epsilons", spec.default_epsilons),
            ("max_cluster_size", 50),
        )
        chunks = plan_chunks(spec, seeds, params, seeds_per_chunk=width)
        flattened = [s for chunk in chunks for s in chunk.seed_nodes]
        assert flattened == [int(s) for s in seeds]
        assert [c.index for c in chunks] == list(range(len(chunks)))
        assert all(1 <= len(c.seed_nodes) <= width for c in chunks)
        assert all(c.dynamics == key for c in chunks)
        # Chunks reconstruct the exact spec they were planned from.
        assert all(c.spec() == spec for c in chunks)


@dataclass(frozen=True)
class TwoHop(PPR):
    """A toy 'new dynamics' for the extension-point test.

    Reuses the PPR machinery but is registered as its own kind — the
    point is that *registration alone* makes it runnable through the NCP
    runner and the local driver.
    """

    name: ClassVar[str] = "twohop"
    candidate_label: ClassVar[str] = "twohop"
    local_method: ClassVar[str] = "twohop"

    @classmethod
    def from_grid_params(cls, params):
        return cls(alpha=params["alphas"])


class TestExtensionPoint:
    @pytest.fixture
    def twohop_kind(self):
        kind = register_dynamics(DynamicsKind(
            name="Two-Hop Push",
            aggressiveness_parameter="teleport probability",
            regularizer="log-determinant -log det(X)",
            default_parameters={"gamma": 0.2},
            verifier=lambda graph, **kw: None,
            key="twohop",
            aliases=("two_hop",),
            spec_type=TwoHop,
            local_spec_factory=lambda graph=None: TwoHop(alpha=0.2),
            legacy_axes=None,
        ))
        yield kind
        if "twohop" in registered_dynamics():
            unregister_dynamics("twohop")

    def test_new_dynamics_runs_through_runner_untouched(self, whiskered,
                                                        twohop_kind):
        spec = TwoHop(alpha=(0.1,))
        run = run_ncp_ensemble(
            whiskered,
            DiffusionGrid(spec, epsilons=(1e-3,), num_seeds=3, seed=0),
            seeds_per_chunk=2,
        )
        assert run.dynamics == "twohop"
        assert len(run.candidates) > 0
        assert all(c.method == "twohop" for c in run.candidates)

    def test_new_dynamics_drives_local_cluster(self, whiskered,
                                               twohop_kind):
        from repro.partition.local import local_cluster

        result = local_cluster(whiskered, [41], "two_hop", epsilon=1e-4)
        assert result.method == "twohop"
        assert result.nodes.size > 0

    def test_unregistered_spec_is_rejected_again(self, whiskered,
                                                 twohop_kind):
        unregister_dynamics("twohop")
        with pytest.raises(UnknownDynamicsError):
            DiffusionGrid(TwoHop(alpha=(0.1,)))
        # Re-register so the fixture teardown can unregister cleanly.
        register_dynamics(twohop_kind)

    def test_duplicate_key_rejected_without_overwrite(self):
        # Regression: re-registering an existing canonical key used to
        # silently replace the built-in entry.
        ppr_kind = get_dynamics("ppr")
        with pytest.raises(InvalidParameterError):
            register_dynamics(DynamicsKind(
                name="Impostor PageRank",
                aggressiveness_parameter="x",
                regularizer="y",
                default_parameters={},
                verifier=lambda graph, **kw: None,
                key="ppr",
                aliases=(),
                spec_type=TwoHop,
                local_spec_factory=lambda graph=None: TwoHop(alpha=0.2),
            ))
        assert get_dynamics("ppr") is ppr_kind

    def test_duplicate_spelling_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_dynamics(DynamicsKind(
                name="Impostor",
                aggressiveness_parameter="x",
                regularizer="y",
                default_parameters={},
                verifier=lambda graph, **kw: None,
                key="impostor",
                aliases=("pagerank",),  # taken by ppr
                spec_type=TwoHop,
                local_spec_factory=lambda graph=None: TwoHop(alpha=0.2),
            ))
        assert "impostor" not in registered_dynamics()


class TestGridValidation:
    def test_num_seeds_validated(self):
        with pytest.raises(InvalidParameterError):
            DiffusionGrid(PPR(), num_seeds=0)

    def test_max_cluster_size_validated(self):
        with pytest.raises(InvalidParameterError):
            DiffusionGrid(PPR(), max_cluster_size=0)

    def test_epsilons_validated(self):
        with pytest.raises(InvalidParameterError):
            DiffusionGrid(PPR(), epsilons=(0.5, 2.0))

    def test_grid_size_counts_columns(self):
        assert PPR(alpha=(0.1, 0.2)).grid_size((1e-3, 1e-4)) == 4
        assert HeatKernel(t=(1.0,)).grid_size((1e-3,)) == 1
        # walk_alpha is a fixed parameter, not a swept axis.
        assert LazyWalk(steps=(4, 16), walk_alpha=0.7).grid_size(
            (1e-3,)
        ) == 2

    def test_resolve_max_cluster_size_defaults_to_half(self, whiskered):
        grid = DiffusionGrid(PPR())
        assert grid.resolve_max_cluster_size(whiskered) == (
            whiskered.num_nodes // 2
        )
        capped = DiffusionGrid(PPR(), max_cluster_size=7)
        assert capped.resolve_max_cluster_size(whiskered) == 7
