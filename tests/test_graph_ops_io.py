"""Tests for graph operations, bipartite utilities, and I/O."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.graph import ops
from repro.graph.bipartite import (
    bipartite_from_memberships,
    community_bipartite_graph,
    is_bipartite,
    project_left,
)
from repro.graph.build import from_edges
from repro.graph.generators import cycle_graph, path_graph, star_graph
from repro.graph.io import (
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_weighted_edges_from(graph.edges())
    return g


class TestOps:
    def test_degree_histogram(self, barbell):
        hist = ops.degree_histogram(barbell)
        # Two bridge endpoints have degree 8, the other 14 have degree 7.
        assert hist[7] == 14 and hist[8] == 2

    def test_average_degree(self, triangle):
        assert ops.average_degree(triangle) == pytest.approx(2.0)

    def test_aspl_matches_networkx(self, ring):
        ours = ops.average_shortest_path_length(ring)
        theirs = nx.average_shortest_path_length(to_networkx(ring))
        assert ours == pytest.approx(theirs)

    def test_aspl_path_graph(self):
        g = path_graph(4)
        # Pairs: 1+2+3 + 1+2 + 1 = 10 over 6 pairs.
        assert ops.average_shortest_path_length(g) == pytest.approx(10 / 6)

    def test_aspl_sampled_sources(self, grid):
        exact = ops.average_shortest_path_length(grid)
        sampled = ops.average_shortest_path_length(grid, sources=range(0, 64, 4))
        assert sampled == pytest.approx(exact, rel=0.2)

    def test_aspl_disconnected_raises(self):
        g = from_edges(4, [(0, 1)])
        with pytest.raises(DisconnectedGraphError):
            ops.average_shortest_path_length(g, sources=[2])

    def test_diameter_matches_networkx(self, lollipop):
        assert ops.diameter(lollipop) == nx.diameter(to_networkx(lollipop))

    def test_eccentricity(self):
        g = path_graph(5)
        assert ops.eccentricity(g, 0) == 4
        assert ops.eccentricity(g, 2) == 2

    def test_k_hop_ball(self, grid):
        ball = ops.k_hop_ball(grid, 0, 1)
        assert set(ball.tolist()) == {0, 1, 8}

    def test_triangle_count_matches_networkx(self, planted):
        ours = ops.triangle_count(planted)
        theirs = sum(nx.triangles(to_networkx(planted)).values()) // 3
        assert ours == theirs

    def test_clustering_coefficient_complete(self):
        from repro.graph.generators import complete_graph

        assert ops.clustering_coefficient(complete_graph(6)) == pytest.approx(1.0)

    def test_clustering_coefficient_star_zero(self):
        assert ops.clustering_coefficient(star_graph(5)) == 0.0

    def test_remove_edges(self, triangle):
        g = ops.remove_edges(triangle, [(0, 1)])
        assert g.num_edges == 2
        assert not g.has_edge(0, 1)

    def test_add_edges_merges(self, triangle):
        g = ops.add_edges(triangle, [(0, 1)], [2.0])
        assert g.edge_weight(0, 1) == 3.0

    def test_relabel_preserves_structure(self, small_path):
        perm = np.array([5, 4, 3, 2, 1, 0])
        g = ops.relabel(small_path, perm)
        assert g.has_edge(5, 4)
        assert g.degrees[0] == 1  # old node 5

    def test_relabel_rejects_non_permutation(self, triangle):
        with pytest.raises(GraphError):
            ops.relabel(triangle, [0, 0, 1])


class TestBipartite:
    def test_from_memberships(self):
        g, num_right = bipartite_from_memberships(3, [[0, 1], [1, 2]])
        assert num_right == 2
        assert g.num_nodes == 5
        assert g.has_edge(0, 3) and g.has_edge(2, 4)

    def test_is_bipartite_detects_odd_cycle(self):
        flag, _ = is_bipartite(cycle_graph(5))
        assert not flag
        flag, coloring = is_bipartite(cycle_graph(6))
        assert flag
        assert coloring is not None

    def test_generator_output_is_bipartite(self):
        g, _, _ = community_bipartite_graph(50, 80, 4, seed=1)
        flag, coloring = is_bipartite(g)
        assert flag

    def test_projection_weights_count_common_papers(self):
        # Two papers, both written by authors 0 and 1.
        g, _ = bipartite_from_memberships(2, [[0, 1], [0, 1]])
        co = project_left(g, 2)
        assert co.edge_weight(0, 1) == 2.0

    def test_generator_deterministic(self):
        a = community_bipartite_graph(40, 60, 3, seed=9)[0]
        b = community_bipartite_graph(40, 60, 3, seed=9)[0]
        assert a == b

    def test_community_structure_present(self):
        g, authors, papers = community_bipartite_graph(
            100, 200, 4, seed=2, crossover_probability=0.02
        )
        # Authors of one community plus its papers should cut few edges.
        community0_authors = [
            a for a, c in enumerate(authors) if 0 in c and len(c) == 1
        ]
        community0_papers = [
            100 + p for p in range(200) if papers[p] == 0
        ]
        cluster = community0_authors + community0_papers
        if 0 < len(cluster) < g.num_nodes:
            from repro.partition.metrics import conductance

            phi = conductance(g, cluster)
            assert phi < 0.5


class TestIO:
    def test_edge_list_roundtrip(self, weighted_triangle, tmp_path):
        target = tmp_path / "g.tsv"
        write_edge_list(weighted_triangle, target)
        rebuilt = read_edge_list(target)
        assert rebuilt == weighted_triangle

    def test_edge_list_unweighted(self, ring, tmp_path):
        target = tmp_path / "g.tsv"
        write_edge_list(ring, target, write_weights=False)
        rebuilt = read_edge_list(target)
        assert rebuilt == ring

    def test_edge_list_explicit_num_nodes(self, tmp_path):
        target = tmp_path / "g.tsv"
        target.write_text("0\t1\n", encoding="utf-8")
        g = read_edge_list(target, num_nodes=5)
        assert g.num_nodes == 5

    def test_edge_list_bad_line_raises(self, tmp_path):
        target = tmp_path / "g.tsv"
        target.write_text("0 1 2 3\n", encoding="utf-8")
        with pytest.raises(GraphError, match="expected"):
            read_edge_list(target)

    def test_edge_list_unparseable_raises(self, tmp_path):
        target = tmp_path / "g.tsv"
        target.write_text("a b\n", encoding="utf-8")
        with pytest.raises(GraphError, match="unparseable"):
            read_edge_list(target)

    def test_json_roundtrip(self, weighted_triangle, tmp_path):
        target = tmp_path / "g.json"
        write_json(weighted_triangle, target)
        assert read_json(target) == weighted_triangle

    def test_json_missing_keys(self):
        from repro.graph.io import from_json_document

        with pytest.raises(GraphError):
            from_json_document({"edges": []})

    def test_negative_id_raises_with_location(self, tmp_path):
        target = tmp_path / "g.tsv"
        target.write_text("# header\n0\t1\n2\t-3\n", encoding="utf-8")
        with pytest.raises(GraphError, match=r"g\.tsv:3: negative node id"):
            read_edge_list(target)

    def test_negative_first_column_raises(self, tmp_path):
        target = tmp_path / "g.tsv"
        target.write_text("-1\t4\n", encoding="utf-8")
        with pytest.raises(GraphError, match="node ids must be >= 0"):
            read_edge_list(target)

    def test_mixed_column_counts(self, tmp_path):
        # 2- and 3-column lines in one file exercise the slow-path parse.
        target = tmp_path / "g.tsv"
        target.write_text("0 1\n1 2 2.5\n", encoding="utf-8")
        g = read_edge_list(target)
        assert g.num_edges == 2
        assert g.edge_weight(1, 2) == 2.5

    def test_comments_and_blanks_between_chunks(self, tmp_path):
        target = tmp_path / "g.tsv"
        target.write_text(
            "# a\n\n0\t1\n# b\n\n1\t2\n# trailing\n", encoding="utf-8"
        )
        g = read_edge_list(target)
        assert g.num_edges == 2

    def test_integral_float_ids_accepted(self, tmp_path):
        target = tmp_path / "g.tsv"
        target.write_text("0.0\t1.0\t2.0\n", encoding="utf-8")
        g = read_edge_list(target)
        assert g.num_edges == 1 and g.edge_weight(0, 1) == 2.0

    def test_chunked_read_matches_small_blocks(self, planted, tmp_path,
                                               monkeypatch):
        # Force many tiny chunks through the streaming parser and check
        # the result is identical to a one-chunk parse.
        from repro.graph import io as io_mod

        target = tmp_path / "g.tsv"
        write_edge_list(planted, target)
        one_chunk = read_edge_list(target)
        monkeypatch.setattr(io_mod, "_READ_BLOCK_BYTES", 64)
        many_chunks = read_edge_list(target)
        assert one_chunk == many_chunks == planted

    def test_streamed_write_matches_small_blocks(self, planted, tmp_path,
                                                 monkeypatch):
        from repro.graph import io as io_mod

        big = tmp_path / "big.tsv"
        write_edge_list(planted, big)
        monkeypatch.setattr(io_mod, "_WRITE_BLOCK_EDGES", 7)
        small = tmp_path / "small.tsv"
        write_edge_list(planted, small)
        assert big.read_bytes() == small.read_bytes()

    def test_error_line_number_in_later_chunk(self, tmp_path, monkeypatch):
        from repro.graph import io as io_mod

        monkeypatch.setattr(io_mod, "_READ_BLOCK_BYTES", 8)
        target = tmp_path / "g.tsv"
        target.write_text("0\t1\n1\t2\n2\t3\nbad line x y\n",
                          encoding="utf-8")
        with pytest.raises(GraphError, match=r"g\.tsv:4"):
            read_edge_list(target)
