"""Tests for the three canonical diffusion dynamics (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.heat_kernel import (
    heat_kernel_matrix,
    heat_kernel_profile,
    heat_kernel_vector,
)
from repro.diffusion.lazy_walk import (
    lazy_walk_matrix_power_dense,
    lazy_walk_trajectory,
    lazy_walk_vector,
    mixing_time,
)
from repro.diffusion.pagerank import (
    global_pagerank,
    lazy_equivalent_gamma,
    lazy_pagerank_exact,
    pagerank_exact,
    pagerank_power,
    pagerank_resolvent_dense,
)
from repro.diffusion.seeds import (
    degree_seed,
    degree_weighted_indicator_seed,
    indicator_seed,
    random_sign_seed,
    random_unit_seed,
    uniform_seed,
)
from repro.exceptions import InvalidParameterError


class TestSeeds:
    def test_indicator_sums_to_one(self, ring):
        s = indicator_seed(ring, [0, 3, 7])
        assert s.sum() == pytest.approx(1.0)
        assert np.count_nonzero(s) == 3

    def test_degree_seed_is_stationary(self, ring):
        from repro.graph.matrices import random_walk_matrix

        pi = degree_seed(ring)
        assert np.allclose(random_walk_matrix(ring) @ pi, pi)

    def test_degree_weighted_indicator(self, barbell):
        s = degree_weighted_indicator_seed(barbell, [0, 7])
        assert s.sum() == pytest.approx(1.0)
        # Node 7 is a bridge endpoint with higher degree: more mass.
        assert s[7] > s[0]

    def test_uniform_seed(self, triangle):
        assert np.allclose(uniform_seed(triangle), 1 / 3)

    def test_random_unit_seed_orthogonal(self, grid):
        from repro.graph.matrices import trivial_eigenvector

        v = random_unit_seed(grid, seed=0)
        assert np.linalg.norm(v) == pytest.approx(1.0)
        assert abs(v @ trivial_eigenvector(grid)) < 1e-10

    def test_random_sign_seed_unit(self, grid):
        v = random_sign_seed(grid, seed=1)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_empty_seed_rejected(self, ring):
        with pytest.raises(InvalidParameterError):
            indicator_seed(ring, [])


class TestPageRank:
    def test_exact_solves_resolvent_system(self, ring, rng):
        from repro.diffusion.pagerank import pagerank_operator

        s = rng.random(ring.num_nodes)
        s /= s.sum()
        x = pagerank_exact(ring, 0.2, s)
        op = pagerank_operator(ring, 0.2)
        assert np.allclose(op @ x, 0.2 * s, atol=1e-9)

    def test_mass_conservation(self, whiskered):
        s = indicator_seed(whiskered, [0])
        x = pagerank_exact(whiskered, 0.15, s)
        assert x.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(x >= -1e-12)

    def test_power_converges_to_exact(self, ring):
        s = indicator_seed(ring, [2])
        exact = pagerank_exact(ring, 0.25, s)
        approx, iterations = pagerank_power(ring, 0.25, s, tol=1e-13)
        assert np.allclose(approx, exact, atol=1e-9)
        assert iterations > 1

    def test_power_early_stopping_is_truncated_neumann(self, ring):
        from repro.graph.matrices import random_walk_matrix

        gamma = 0.3
        s = indicator_seed(ring, [1])
        M = random_walk_matrix(ring).toarray()
        k = 4
        expected = gamma * sum(
            (1 - gamma) ** j * np.linalg.matrix_power(M, j) @ s
            for j in range(k + 1)
        )
        got, _ = pagerank_power(ring, gamma, s, num_iterations=k)
        assert np.allclose(got, expected, atol=1e-12)

    def test_resolvent_dense_row_sums(self, barbell):
        R = pagerank_resolvent_dense(barbell, 0.2)
        # R_gamma maps distributions to distributions: columns sum to 1.
        assert np.allclose(R.sum(axis=0), 1.0)

    def test_gamma_one_limit_is_seed(self, ring):
        s = indicator_seed(ring, [4])
        x = pagerank_exact(ring, 0.999999, s)
        assert np.allclose(x, s, atol=1e-4)

    def test_gamma_zero_limit_is_stationary(self, ring):
        s = indicator_seed(ring, [4])
        x = pagerank_exact(ring, 1e-7, s)
        assert np.allclose(x, degree_seed(ring), atol=1e-4)

    def test_lazy_equivalence_formula(self, ring):
        from repro.graph.matrices import lazy_walk_matrix

        alpha = 0.12
        s = indicator_seed(ring, [0])
        lazy = lazy_pagerank_exact(ring, alpha, s)
        W = lazy_walk_matrix(ring, 0.5).toarray()
        n = ring.num_nodes
        direct = alpha * np.linalg.solve(
            np.eye(n) - (1 - alpha) * W, s
        )
        assert np.allclose(lazy, direct, atol=1e-9)

    def test_lazy_equivalent_gamma_monotone(self):
        gammas = [lazy_equivalent_gamma(a) for a in (0.05, 0.2, 0.5, 0.9)]
        assert gammas == sorted(gammas)
        assert lazy_equivalent_gamma(0.5) == pytest.approx(2 / 3)

    def test_global_pagerank_favors_high_degree(self, lollipop):
        pr = global_pagerank(lollipop, 0.15)
        # Clique nodes have higher PageRank than the tail tip.
        assert pr[0] > pr[lollipop.num_nodes - 1]


class TestHeatKernel:
    def test_lanczos_matches_dense(self, ring, rng):
        s = rng.random(ring.num_nodes)
        for kind in ("normalized", "random_walk"):
            dense = heat_kernel_matrix(ring, 1.3, kind=kind) @ s
            fast = heat_kernel_vector(ring, s, 1.3, kind=kind)
            assert np.allclose(fast, dense, atol=1e-8)

    def test_taylor_matches_lanczos(self, grid, rng):
        s = rng.random(grid.num_nodes)
        a = heat_kernel_vector(grid, s, 2.2, method="taylor")
        b = heat_kernel_vector(grid, s, 2.2, method="lanczos")
        assert np.allclose(a, b, atol=1e-8)

    def test_random_walk_kind_conserves_mass(self, whiskered):
        s = indicator_seed(whiskered, [3])
        h = heat_kernel_vector(whiskered, s, 4.0, kind="random_walk")
        assert h.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(h >= -1e-12)

    def test_long_time_limit_is_stationary(self, ring):
        s = indicator_seed(ring, [0])
        h = heat_kernel_vector(ring, s, 500.0, kind="random_walk")
        assert np.allclose(h, degree_seed(ring), atol=1e-6)

    def test_zero_time_is_identity(self, ring):
        s = indicator_seed(ring, [5])
        h = heat_kernel_vector(ring, s, 0.0, kind="random_walk")
        assert np.allclose(h, s, atol=1e-12)

    def test_profile_rows(self, ring):
        s = indicator_seed(ring, [0])
        rows = heat_kernel_profile(ring, s, [0.5, 1.0, 2.0])
        assert rows.shape == (3, ring.num_nodes)
        # Later times are closer to stationarity.
        pi = degree_seed(ring)
        distances = [np.abs(r - pi).sum() for r in rows]
        assert distances[0] > distances[2]

    def test_semigroup_property(self, barbell):
        s = indicator_seed(barbell, [1])
        once = heat_kernel_vector(
            barbell, heat_kernel_vector(barbell, s, 0.7), 0.8
        )
        combined = heat_kernel_vector(barbell, s, 1.5)
        assert np.allclose(once, combined, atol=1e-8)


class TestLazyWalk:
    def test_matches_dense_power(self, ring):
        s = indicator_seed(ring, [2])
        for k in (0, 1, 5):
            dense = lazy_walk_matrix_power_dense(ring, k, alpha=0.5) @ s
            fast = lazy_walk_vector(ring, s, k, alpha=0.5)
            assert np.allclose(fast, dense, atol=1e-12)

    def test_conserves_mass_and_nonnegative(self, whiskered):
        s = indicator_seed(whiskered, [0])
        out = lazy_walk_vector(whiskered, s, 20, alpha=0.5)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= 0)

    def test_trajectory_shape_and_consistency(self, ring):
        s = indicator_seed(ring, [0])
        rows = lazy_walk_trajectory(ring, s, 6, alpha=0.5)
        assert rows.shape == (7, ring.num_nodes)
        assert np.allclose(rows[0], s)
        assert np.allclose(
            rows[6], lazy_walk_vector(ring, s, 6, alpha=0.5)
        )

    def test_converges_to_stationary(self, barbell):
        s = indicator_seed(barbell, [0])
        out = lazy_walk_vector(barbell, s, 5000, alpha=0.5)
        assert np.allclose(out, degree_seed(barbell), atol=1e-5)

    def test_mixing_time_orders_graphs(self, barbell, planted):
        # A barbell (bottleneck) mixes far slower than a dense planted graph.
        slow = mixing_time(barbell, tolerance=0.25)
        fast = mixing_time(planted, tolerance=0.25)
        assert slow > fast
