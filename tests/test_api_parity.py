"""Old-vs-new API parity: the deprecation shims against the unified API.

This is the *only* test module allowed to call the deprecated entry
points without tripping the suite-wide ``error:repro API deprecation``
filter (see ``pytest.ini``): its job is to prove that every pre-registry
entry point still works, warns, and produces an ensemble / cluster that
is identical — candidate for candidate, in order — to the grid-spec path
it now wraps, for all three canonical dynamics on the reference graphs.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backends import UnknownBackendError
from repro.diffusion.seeds import degree_weighted_indicator_seed
from repro.diffusion.truncated_walk import truncated_lazy_walk
from repro.dynamics import DiffusionGrid, HeatKernel, LazyWalk, PPR
from repro.exceptions import InvalidParameterError
from repro.ncp.compare import figure1_comparison
from repro.ncp.profile import (
    cluster_ensemble_ncp,
    flow_cluster_ensemble_ncp,
    grid_candidates_for_seed_nodes,
    hk_cluster_ensemble_ncp,
    hk_candidates_for_seed_nodes,
    spectral_cluster_ensemble_ncp,
    spectral_candidates_for_seed_nodes,
    walk_cluster_ensemble_ncp,
    walk_candidates_for_seed_nodes,
)
from repro.ncp.runner import plan_chunks, run_ncp_ensemble
from repro.partition.flow_improve import dilate
from repro.partition.local import (
    acl_cluster,
    hk_cluster,
    local_cluster,
    nibble_cluster,
)
from repro.partition.sweep import sweep_cut

# The shims under test *should* warn; keep the warnings observable
# instead of promoted to errors.
pytestmark = pytest.mark.filterwarnings("default:repro API deprecation")


def candidate_signature(candidates):
    """Order-sensitive exact signature of a candidate ensemble."""
    return [
        (c.nodes.tobytes(), c.conductance, c.method) for c in candidates
    ]


def cluster_signature(result):
    return (
        result.nodes.tobytes(),
        result.conductance,
        result.method,
        result.work,
        result.support_size,
        bool(result.contains_seed),
        result.seed_nodes.tobytes(),
    )


ENSEMBLE_CASES = [
    pytest.param(
        spectral_cluster_ensemble_ncp,
        dict(num_seeds=5, alphas=(0.05, 0.15), epsilons=(1e-3,), seed=3),
        DiffusionGrid(
            PPR(alpha=(0.05, 0.15)), epsilons=(1e-3,), num_seeds=5, seed=3
        ),
        id="ppr",
    ),
    pytest.param(
        hk_cluster_ensemble_ncp,
        dict(num_seeds=4, ts=(2.0, 8.0), epsilons=(1e-3,), seed=5),
        DiffusionGrid(
            HeatKernel(t=(2.0, 8.0)), epsilons=(1e-3,), num_seeds=4, seed=5
        ),
        id="hk",
    ),
    pytest.param(
        walk_cluster_ensemble_ncp,
        dict(num_seeds=4, steps=(4, 16), epsilons=(1e-3,), alpha=0.5,
             seed=2),
        DiffusionGrid(
            LazyWalk(steps=(4, 16), walk_alpha=0.5), epsilons=(1e-3,),
            num_seeds=4, seed=2,
        ),
        id="walk",
    ),
]


class TestEnsembleShimParity:
    @pytest.mark.parametrize("shim, legacy_kwargs, grid", ENSEMBLE_CASES)
    def test_old_generator_matches_grid_api(self, whiskered, shim,
                                            legacy_kwargs, grid):
        with pytest.warns(DeprecationWarning, match="repro API deprecation"):
            old = shim(whiskered, **legacy_kwargs)
        new = cluster_ensemble_ncp(whiskered, grid)
        assert len(old) > 0
        assert candidate_signature(old) == candidate_signature(new)

    @pytest.mark.parametrize("shim, legacy_kwargs, grid", ENSEMBLE_CASES)
    def test_old_generator_matches_grid_api_on_reference(self, shim,
                                                         legacy_kwargs,
                                                         grid):
        # The acceptance workload: identical ensembles (same candidates,
        # same order) on the AtP-DBLP reference graph.
        from repro.datasets import load_graph

        graph = load_graph("atp")
        with pytest.warns(DeprecationWarning):
            old = shim(graph, **legacy_kwargs)
        new = cluster_ensemble_ncp(graph, grid)
        assert len(old) > 0
        assert candidate_signature(old) == candidate_signature(new)


class TestShardShimParity:
    def test_spectral_shard_shim(self, whiskered):
        seeds = [41, 3, 17]
        kwargs = dict(epsilons=(1e-3,), max_cluster_size=20)
        with pytest.warns(DeprecationWarning):
            old = spectral_candidates_for_seed_nodes(
                whiskered, seeds, alphas=(0.1,), **kwargs
            )
        new = grid_candidates_for_seed_nodes(
            whiskered, seeds, PPR(alpha=(0.1,)), **kwargs
        )
        assert candidate_signature(old) == candidate_signature(new)

    def test_hk_shard_shim(self, whiskered):
        seeds = [41, 3]
        kwargs = dict(epsilons=(1e-3,), max_cluster_size=20)
        with pytest.warns(DeprecationWarning):
            old = hk_candidates_for_seed_nodes(
                whiskered, seeds, ts=(2.0,), **kwargs
            )
        new = grid_candidates_for_seed_nodes(
            whiskered, seeds, HeatKernel(t=(2.0,)), **kwargs
        )
        assert candidate_signature(old) == candidate_signature(new)

    def test_walk_shard_shim(self, whiskered):
        seeds = [41, 3]
        with pytest.warns(DeprecationWarning):
            old = walk_candidates_for_seed_nodes(
                whiskered, seeds, steps=(4, 8), epsilons=(1e-3,),
                alpha=0.5, max_cluster_size=20,
            )
        new = grid_candidates_for_seed_nodes(
            whiskered, seeds, LazyWalk(steps=(4, 8), walk_alpha=0.5),
            epsilons=(1e-3,), max_cluster_size=20,
        )
        assert candidate_signature(old) == candidate_signature(new)


class TestRunnerShimParity:
    @pytest.mark.parametrize(
        "legacy_kwargs, grid",
        [
            pytest.param(
                dict(dynamics="ppr", num_seeds=4, alphas=(0.1,),
                     epsilons=(1e-3,), seed=0),
                DiffusionGrid(
                    PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=4,
                    seed=0,
                ),
                id="ppr",
            ),
            pytest.param(
                dict(dynamics="hk", num_seeds=3, seed=5),
                DiffusionGrid(HeatKernel(), num_seeds=3, seed=5),
                id="hk-default-axes",
            ),
            pytest.param(
                dict(dynamics="walk", num_seeds=3, steps=(4, 8),
                     walk_alpha=0.6, seed=1),
                DiffusionGrid(
                    LazyWalk(steps=(4, 8), walk_alpha=0.6), num_seeds=3,
                    seed=1,
                ),
                id="walk",
            ),
        ],
    )
    def test_legacy_kwarg_soup_matches_grid(self, whiskered, legacy_kwargs,
                                            grid):
        with pytest.warns(DeprecationWarning, match="repro API deprecation"):
            old = run_ncp_ensemble(whiskered, **legacy_kwargs)
        new = run_ncp_ensemble(whiskered, grid)
        assert old.dynamics == new.dynamics == grid.key
        assert old.num_chunks == new.num_chunks
        assert candidate_signature(old.candidates) == (
            candidate_signature(new.candidates)
        )

    def test_legacy_default_dynamics_is_ppr(self, whiskered):
        with pytest.warns(DeprecationWarning):
            old = run_ncp_ensemble(whiskered, num_seeds=3, seed=0)
        new = run_ncp_ensemble(
            whiskered, DiffusionGrid(PPR(), num_seeds=3, seed=0)
        )
        assert old.dynamics == "ppr"
        assert candidate_signature(old.candidates) == (
            candidate_signature(new.candidates)
        )


class TestLocalShimParity:
    def test_acl_shim(self, whiskered):
        with pytest.warns(DeprecationWarning, match="acl_cluster"):
            old = acl_cluster(whiskered, [44], alpha=0.05, epsilon=1e-5)
        new = local_cluster(
            whiskered, [44], PPR(alpha=0.05), epsilon=1e-5
        )
        assert cluster_signature(old) == cluster_signature(new)
        assert old.method == "acl"

    def test_nibble_shim_default_steps(self, ring):
        with pytest.warns(DeprecationWarning, match="nibble_cluster"):
            old = nibble_cluster(ring, [2], epsilon=1e-5)
        new = local_cluster(ring, [2], "nibble", epsilon=1e-5)
        assert cluster_signature(old) == cluster_signature(new)
        assert old.method == "nibble"

    def test_nibble_shim_explicit_steps(self, ring):
        with pytest.warns(DeprecationWarning):
            old = nibble_cluster(ring, [2], num_steps=12, epsilon=1e-4)
        new = local_cluster(
            ring, [2], LazyWalk(steps=12), epsilon=1e-4
        )
        assert cluster_signature(old) == cluster_signature(new)

    def test_hk_shim(self, ring):
        with pytest.warns(DeprecationWarning, match="hk_cluster"):
            old = hk_cluster(
                ring, [2], t=4.0, epsilon=1e-6, max_volume=33.0
            )
        new = local_cluster(
            ring, [2], HeatKernel(t=4.0), epsilon=1e-6, max_volume=33.0
        )
        assert cluster_signature(old) == cluster_signature(new)
        assert old.method == "hk"


class TestFlowEnsembleShimParity:
    """The pre-registry ``improve_with_mqi``/``max_mqi_size`` keywords
    against the registry-driven ``refiners``/``max_refine_size`` path:
    candidate-for-candidate identity on the reference graphs."""

    def test_improve_with_mqi_true_matches_mqi_chain(self, whiskered):
        with pytest.warns(DeprecationWarning, match="repro API deprecation"):
            old = flow_cluster_ensemble_ncp(
                whiskered, min_size=4, seed=0, improve_with_mqi=True
            )
        new = flow_cluster_ensemble_ncp(
            whiskered, min_size=4, seed=0, refiners=("mqi",)
        )
        assert len(old) > 0
        assert candidate_signature(old) == candidate_signature(new)

    def test_improve_with_mqi_false_matches_empty_chain(self, whiskered):
        with pytest.warns(DeprecationWarning):
            old = flow_cluster_ensemble_ncp(
                whiskered, min_size=4, seed=0, improve_with_mqi=False
            )
        new = flow_cluster_ensemble_ncp(
            whiskered, min_size=4, seed=0, refiners=()
        )
        assert candidate_signature(old) == candidate_signature(new)

    def test_max_mqi_size_maps_to_max_refine_size(self, whiskered):
        with pytest.warns(DeprecationWarning):
            old = flow_cluster_ensemble_ncp(
                whiskered, min_size=4, seed=0, max_mqi_size=8
            )
        new = flow_cluster_ensemble_ncp(
            whiskered, min_size=4, seed=0, max_refine_size=8
        )
        assert candidate_signature(old) == candidate_signature(new)

    def test_parity_on_reference_graph(self):
        from repro.datasets import load_graph

        graph = load_graph("atp")
        with pytest.warns(DeprecationWarning):
            old = flow_cluster_ensemble_ncp(
                graph, min_size=4, seed=1, improve_with_mqi=True
            )
        new = flow_cluster_ensemble_ncp(
            graph, min_size=4, seed=1, refiners=("mqi",)
        )
        assert len(old) > 0
        assert candidate_signature(old) == candidate_signature(new)


class TestBackendShimParity:
    """The pre-registry ``engine=`` / ``implementation=`` stringly flags
    against the backend registry: every shim must warn, map its legacy
    vocabulary onto the canonical backend names, and produce bit-identical
    results; giving both spellings is an error, and an *invalid* legacy
    value raises :class:`UnknownBackendError` without warning first."""

    def test_sweep_cut_implementation_shim(self, whiskered):
        scores = np.linspace(1.0, 0.0, whiskered.num_nodes)
        for legacy, canonical in (("vectorized", "numpy"),
                                  ("scalar", "scalar")):
            with pytest.warns(DeprecationWarning,
                              match="sweep_cut.implementation"):
                old = sweep_cut(whiskered, scores, implementation=legacy)
            new = sweep_cut(whiskered, scores, backend=canonical)
            assert np.array_equal(old.nodes, new.nodes)
            assert old.conductance == new.conductance
            assert np.array_equal(old.profile, new.profile)

    def test_truncated_lazy_walk_implementation_shim(self, whiskered):
        seed = degree_weighted_indicator_seed(whiskered, [44])
        with pytest.warns(DeprecationWarning,
                          match="truncated_lazy_walk.implementation"):
            old = truncated_lazy_walk(
                whiskered, seed, 8, epsilon=1e-4,
                implementation="vectorized",
            )
        new = truncated_lazy_walk(
            whiskered, seed, 8, epsilon=1e-4, backend="numpy"
        )
        assert np.array_equal(old.final, new.final)
        assert old.support_sizes == new.support_sizes
        assert old.dropped_mass == new.dropped_mass
        assert len(old.trajectory) == len(new.trajectory)
        for old_v, new_v in zip(old.trajectory, new.trajectory):
            assert np.array_equal(old_v, new_v)

    def test_dilate_implementation_shim(self, whiskered):
        with pytest.warns(DeprecationWarning, match="dilate.implementation"):
            old = dilate(whiskered, [0, 1, 2], 1, implementation="scalar")
        new = dilate(whiskered, [0, 1, 2], 1, backend="scalar")
        assert np.array_equal(old, new)

    def test_diffusion_grid_engine_shim(self):
        for legacy, canonical in (("batched", "numpy"),
                                  ("scalar", "scalar")):
            with pytest.warns(DeprecationWarning,
                              match="DiffusionGrid.engine"):
                old = DiffusionGrid(PPR(), num_seeds=4, seed=0,
                                    engine=legacy)
            new = DiffusionGrid(PPR(), num_seeds=4, seed=0,
                                backend=canonical)
            assert old.backend == canonical
            assert old.engine is None
            # Shim-built grids compare and hash equal to canonical ones.
            assert old == new
            assert hash(old) == hash(new)

    def test_iter_columns_engine_shim(self, whiskered):
        spec = PPR(alpha=(0.1,))
        with pytest.warns(DeprecationWarning,
                          match="PPR.iter_columns.engine"):
            old = list(spec.iter_columns(
                whiskered, [44, 3], epsilons=(1e-3,), engine="batched"
            ))
        new = list(spec.iter_columns(
            whiskered, [44, 3], epsilons=(1e-3,), backend="numpy"
        ))
        assert len(old) == len(new) > 0
        for old_col, new_col in zip(old, new):
            assert np.array_equal(old_col, new_col)

    def test_plan_chunks_engine_shim(self, whiskered):
        with pytest.warns(DeprecationWarning, match="plan_chunks.engine"):
            old = plan_chunks(
                "ppr", [44, 3, 17], {"alphas": (0.1,)}, engine="batched"
            )
        new = plan_chunks(
            "ppr", [44, 3, 17], {"alphas": (0.1,)}, backend="numpy"
        )
        assert old == new
        assert all(chunk.backend == "numpy" for chunk in old)

    def test_grid_chunk_engine_property_warns(self):
        chunks = plan_chunks(
            "ppr", [0, 1], {"alphas": (0.1,)}, backend="scalar"
        )
        with pytest.warns(DeprecationWarning, match="GridChunk.engine"):
            assert chunks[0].engine == "scalar"

    def test_both_spellings_is_an_error(self, whiskered):
        scores = np.linspace(1.0, 0.0, whiskered.num_nodes)
        seed = degree_weighted_indicator_seed(whiskered, [44])
        with pytest.raises(InvalidParameterError):
            sweep_cut(whiskered, scores, backend="numpy",
                      implementation="vectorized")
        with pytest.raises(InvalidParameterError):
            truncated_lazy_walk(whiskered, seed, 4, epsilon=1e-3,
                                backend="numpy",
                                implementation="vectorized")
        with pytest.raises(InvalidParameterError):
            dilate(whiskered, [0], 1, backend="scalar",
                   implementation="scalar")
        with pytest.raises(InvalidParameterError):
            DiffusionGrid(PPR(), backend="numpy", engine="batched")
        with pytest.raises(InvalidParameterError):
            plan_chunks("ppr", [0], {}, backend="numpy", engine="batched")

    def test_invalid_legacy_value_raises_without_warning(self, whiskered):
        # Resolution happens before the deprecation warning fires: a bogus
        # legacy value must fail loudly, not half-warn about a migration
        # that cannot succeed.
        scores = np.linspace(1.0, 0.0, whiskered.num_nodes)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(UnknownBackendError):
                sweep_cut(whiskered, scores, implementation="simd")
            with pytest.raises(UnknownBackendError):
                DiffusionGrid(PPR(), engine="gpu")
            with pytest.raises(UnknownBackendError):
                plan_chunks("ppr", [0], {}, engine="tpu")


class TestFigure1ShimParity:
    def test_legacy_alpha_kwargs_match_grid(self, whiskered):
        with pytest.warns(DeprecationWarning, match="figure1_comparison"):
            old = figure1_comparison(
                whiskered, num_buckets=5, num_seeds=6, alphas=(0.1,),
                epsilons=(1e-4,), seed=0,
            )
        new = figure1_comparison(
            whiskered,
            grid=DiffusionGrid(
                PPR(alpha=(0.1,)), epsilons=(1e-4,), num_seeds=6, seed=0
            ),
            num_buckets=5,
            seed=0,
        )
        assert candidate_signature(old.spectral_pool) == (
            candidate_signature(new.spectral_pool)
        )
        assert candidate_signature(old.flow_pool) == (
            candidate_signature(new.flow_pool)
        )
        assert len(old.buckets) == len(new.buckets)
        for old_b, new_b in zip(old.buckets, new.buckets):
            assert old_b.size_low == new_b.size_low
            assert old_b.size_high == new_b.size_high
            assert np.array_equal(
                [old_b.spectral_phi, old_b.flow_phi],
                [new_b.spectral_phi, new_b.flow_phi],
                equal_nan=True,
            )
