"""Tests for iterative solvers, expm action, and Fiedler drivers."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import (
    ConvergenceError,
    DisconnectedGraphError,
    InvalidParameterError,
)
from repro.graph.build import from_edges
from repro.graph.matrices import (
    combinatorial_laplacian,
    normalized_laplacian,
)
from repro.linalg.expm import (
    expm_action_lanczos,
    expm_action_taylor,
    heat_kernel_dense,
    phi_weights,
    taylor_terms_for_tolerance,
)
from repro.linalg.fiedler import (
    fiedler_embedding,
    fiedler_pair,
    fiedler_value,
    fiedler_vector,
)
from repro.linalg.solvers import (
    chebyshev,
    conjugate_gradient,
    gauss_seidel,
    jacobi,
    richardson,
)


@pytest.fixture
def spd_system(ring, rng):
    A = (
        normalized_laplacian(ring)
        + 0.4 * sparse.identity(ring.num_nodes, format="csr")
    ).tocsr()
    b = rng.standard_normal(ring.num_nodes)
    exact = np.linalg.solve(A.toarray(), b)
    return A, b, exact


class TestSolvers:
    def test_cg_matches_direct(self, spd_system):
        A, b, exact = spd_system
        result = conjugate_gradient(A, b, tol=1e-12)
        assert result.converged
        assert np.allclose(result.solution, exact, atol=1e-8)

    def test_cg_singular_consistent(self, ring, rng):
        # Combinatorial Laplacian with mean-zero rhs: consistent singular.
        L = combinatorial_laplacian(ring)
        b = rng.standard_normal(ring.num_nodes)
        b -= b.mean()
        result = conjugate_gradient(L, b, tol=1e-10)
        assert np.linalg.norm(L @ result.solution - b) < 1e-7

    def test_jacobi_matches_direct(self, spd_system):
        A, b, exact = spd_system
        result = jacobi(A, b, tol=1e-11, max_iterations=50_000)
        assert np.allclose(result.solution, exact, atol=1e-6)

    def test_gauss_seidel_matches_direct(self, spd_system):
        A, b, exact = spd_system
        result = gauss_seidel(A, b, tol=1e-11, max_iterations=50_000)
        assert np.allclose(result.solution, exact, atol=1e-6)

    def test_gauss_seidel_faster_than_jacobi(self, spd_system):
        A, b, _ = spd_system
        gs = gauss_seidel(A, b, tol=1e-10, max_iterations=50_000)
        ja = jacobi(A, b, tol=1e-10, max_iterations=50_000)
        assert gs.iterations <= ja.iterations

    def test_richardson_matches_direct(self, spd_system):
        A, b, exact = spd_system
        result = richardson(
            A, b, step_size=0.7, tol=1e-11, max_iterations=50_000
        )
        assert np.allclose(result.solution, exact, atol=1e-6)

    def test_chebyshev_matches_direct(self, spd_system):
        A, b, exact = spd_system
        result = chebyshev(
            A, b, eigenvalue_bounds=(0.4, 2.4), tol=1e-11,
            max_iterations=50_000,
        )
        assert np.allclose(result.solution, exact, atol=1e-6)

    def test_chebyshev_beats_richardson(self, spd_system):
        A, b, _ = spd_system
        cheb = chebyshev(A, b, eigenvalue_bounds=(0.4, 2.4), tol=1e-10)
        rich = richardson(A, b, step_size=0.7, tol=1e-10)
        assert cheb.iterations < rich.iterations

    def test_residual_history_decreasing_cg(self, spd_system):
        A, b, _ = spd_system
        result = conjugate_gradient(A, b, tol=1e-12)
        # CG residuals aren't strictly monotone but must collapse overall.
        assert result.residual_history[-1] < result.residual_history[0]

    def test_nonconvergence_raises(self, spd_system):
        A, b, _ = spd_system
        with pytest.raises(ConvergenceError):
            jacobi(A, b, tol=1e-14, max_iterations=2)

    def test_jacobi_needs_nonzero_diagonal(self, rng):
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            jacobi(A, np.ones(2))


class TestExpmAction:
    def test_taylor_matches_dense(self, ring, rng):
        L = normalized_laplacian(ring)
        v = rng.standard_normal(ring.num_nodes)
        expected = heat_kernel_dense(L, 1.7) @ v
        got = expm_action_taylor(L, v, 1.7, spectral_bound=2.0, tol=1e-14)
        assert np.allclose(got, expected, atol=1e-10)

    def test_lanczos_matches_dense(self, grid, rng):
        L = normalized_laplacian(grid)
        v = rng.standard_normal(grid.num_nodes)
        expected = heat_kernel_dense(L, 0.9) @ v
        got = expm_action_lanczos(L, v, 0.9, num_steps=50)
        assert np.allclose(got, expected, atol=1e-8)

    def test_t_zero_is_identity(self, ring, rng):
        L = normalized_laplacian(ring)
        v = rng.standard_normal(ring.num_nodes)
        got = expm_action_taylor(L, v, 0.0, spectral_bound=2.0)
        assert np.allclose(got, v)

    def test_terms_bound_is_sufficient(self):
        terms = taylor_terms_for_tolerance(3.0, 2.0, 1e-12)
        # Remainder of exp(6) series after `terms` terms must be < 1e-12.
        x, term, k, tail = 6.0, 1.0, 0, 0.0
        for k in range(1, terms + 1):
            term *= x / k
        remainder_est = term * 2  # geometric tail bound (ratio <= 1/2)
        assert remainder_est <= 1e-10

    def test_truncated_series_biases_toward_seed(self, ring):
        # Aggressive truncation (1 term) returns (I - tL)v: closer to the
        # seed than the converged kernel.
        L = normalized_laplacian(ring)
        v = np.zeros(ring.num_nodes)
        v[0] = 1.0
        rough = expm_action_taylor(L, v, 2.0, spectral_bound=2.0, num_terms=1)
        full = expm_action_taylor(L, v, 2.0, spectral_bound=2.0, tol=1e-14)
        assert np.linalg.norm(rough - v) < np.linalg.norm(full - v) + 2.0

    def test_phi_weights_sum_to_poisson_mass(self):
        weights = phi_weights(2.5, 60)
        assert weights.sum() == pytest.approx(1.0, abs=1e-12)

    def test_zero_vector_lanczos(self, ring):
        L = normalized_laplacian(ring)
        out = expm_action_lanczos(L, np.zeros(ring.num_nodes), 1.0)
        assert np.all(out == 0)


class TestFiedler:
    def test_methods_agree(self, barbell):
        lam_exact, x_exact = fiedler_pair(barbell, method="exact")
        for method in ("lanczos", "power"):
            lam, x = fiedler_pair(barbell, method=method, seed=0)
            assert lam == pytest.approx(lam_exact, abs=1e-7)
            assert min(
                np.linalg.norm(x - x_exact), np.linalg.norm(x + x_exact)
            ) < 1e-5

    def test_fiedler_value_positive_for_connected(self, ring):
        assert fiedler_value(ring, method="exact") > 0

    def test_disconnected_raises(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            fiedler_vector(g, method="exact")

    def test_orthogonal_to_trivial(self, lollipop):
        from repro.graph.matrices import trivial_eigenvector

        x = fiedler_vector(lollipop, method="exact")
        assert abs(x @ trivial_eigenvector(lollipop)) < 1e-10

    def test_embedding_separates_barbell(self, barbell):
        y = fiedler_embedding(barbell, method="exact")
        left, right = y[:8], y[8:]
        # The two cliques sit on opposite sides of the embedding.
        assert max(left.max(), right.max()) > 0 > min(left.min(), right.min())
        assert (left.max() < right.min()) or (right.max() < left.min())

    def test_path_fiedler_monotone(self):
        # On a path, the Fiedler embedding is monotone along the path.
        from repro.graph.generators import path_graph

        y = fiedler_embedding(path_graph(12), method="exact")
        diffs = np.diff(y)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_invalid_method(self, triangle):
        with pytest.raises(InvalidParameterError):
            fiedler_pair(triangle, method="qr")

    def test_deterministic_sign(self, grid):
        a = fiedler_vector(grid, method="exact")
        b = fiedler_vector(grid, method="exact")
        assert np.allclose(a, b)
