"""Tests for the scale-tier generators and the fast component helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SCALE_SUITE,
    describe,
    lfr_graph,
    load_any_graph,
    load_graph,
    rmat_graph,
    scale_describe,
    scale_suite_names,
    suite_names,
)
from repro.datasets.suite import UnknownGraphError
from repro.exceptions import EmptyGraphError, InvalidParameterError
from repro.graph.build import (
    connected_component_labels,
    from_edges,
    induced_subgraph_fast,
    largest_component_fast,
    union_disjoint,
)


class TestRmat:
    def test_basic_shape(self):
        g = rmat_graph(10, seed=0)
        assert 0 < g.num_nodes <= 1 << 10
        # edge_factor=16 slots minus dups/self-loops/compaction.
        assert g.num_edges > 4 * (1 << 10)

    def test_deterministic(self):
        a = rmat_graph(9, seed=42)
        b = rmat_graph(9, seed=42)
        assert a == b

    def test_seed_changes_graph(self):
        a = rmat_graph(9, seed=1)
        b = rmat_graph(9, seed=2)
        assert a != b

    def test_keep_all_retains_isolated(self):
        g = rmat_graph(8, edge_factor=1, seed=0, keep="all")
        assert g.num_nodes == 1 << 8

    def test_largest_component_is_connected(self):
        g = rmat_graph(9, edge_factor=2, seed=3)
        assert g.is_connected()

    def test_heavy_tail(self):
        g = rmat_graph(12, seed=5)
        degrees = np.diff(g.indptr)
        # The R-MAT quadrant skew makes hubs far above the mean.
        assert degrees.max() > 10 * degrees.mean()

    def test_bad_probabilities_raise(self):
        with pytest.raises(InvalidParameterError, match="must be < 1"):
            rmat_graph(5, a=0.6, b=0.3, c=0.3)

    def test_bad_keep_raises(self):
        with pytest.raises(InvalidParameterError, match="keep"):
            rmat_graph(5, keep="most")


class TestLfr:
    def test_basic_shape(self):
        g = lfr_graph(2000, mu=0.2, seed=0)
        assert g.num_nodes <= 2000
        assert g.num_edges > 2000  # min_degree 8 before pair drops

    def test_deterministic(self):
        a = lfr_graph(1000, mu=0.3, seed=11)
        b = lfr_graph(1000, mu=0.3, seed=11)
        assert a == b

    def test_communities_returned_and_aligned(self):
        g, labels = lfr_graph(
            2000, mu=0.1, seed=4, return_communities=True
        )
        assert labels.shape == (g.num_nodes,)
        assert labels.min() >= 0

    def test_mixing_parameter_controls_internal_fraction(self):
        low_mu, low_labels = lfr_graph(
            3000, mu=0.1, seed=7, return_communities=True
        )
        high_mu, high_labels = lfr_graph(
            3000, mu=0.6, seed=7, return_communities=True
        )

        def internal_fraction(graph, labels):
            us, vs, _ = graph.edge_array()
            return float((labels[us] == labels[vs]).mean())

        assert (internal_fraction(low_mu, low_labels)
                > internal_fraction(high_mu, high_labels) + 0.2)

    def test_bad_mu_raises(self):
        with pytest.raises(InvalidParameterError):
            lfr_graph(100, mu=1.5)

    def test_bad_exponent_raises(self):
        with pytest.raises(InvalidParameterError, match="degree_exponent"):
            lfr_graph(100, degree_exponent=0.5)


class TestScaleSuite:
    def test_names_disjoint_from_reference_suite(self):
        assert not set(scale_suite_names()) & set(suite_names())

    def test_reference_listing_excludes_scale(self):
        # suite_names() feeds eager listings; scale graphs must not be
        # built by anything that enumerates it.
        assert "rmat-16" not in suite_names()

    def test_registry_metadata(self):
        spec = SCALE_SUITE["rmat-14"]
        assert spec.approx_nodes == 1 << 14
        assert "R-MAT" in spec.role

    def test_load_graph_builds_scale_names(self):
        g = load_graph("rmat-14", seed=1)
        assert g.num_edges > 100_000
        assert g == load_any_graph("rmat-14", seed=1)

    def test_describe_covers_both_tiers(self):
        assert "R-MAT" in describe("rmat-14")
        assert describe("barbell")
        assert scale_describe("lfr-50k")

    def test_unknown_scale_name_hints(self):
        with pytest.raises(UnknownGraphError, match="rmat-14"):
            load_graph("rmat-13")


class TestFastComponentHelpers:
    def cases(self):
        rng = np.random.default_rng(0)
        graphs = []
        for n in (1, 2, 13, 40):
            for p in (0.0, 0.05, 0.2):
                m = rng.random((n, n)) < p
                edges = np.argwhere(np.triu(m, k=1))
                graphs.append(
                    from_edges(n, edges.reshape(-1, 2))
                )
        return graphs

    def test_labels_match_bfs(self):
        for g in self.cases():
            fast_labels, fast_count = connected_component_labels(g)
            slow_labels, slow_count = g.connected_components()
            assert fast_count == slow_count
            assert np.array_equal(fast_labels, slow_labels)

    def test_largest_component_matches_bfs(self):
        for g in self.cases():
            fast, fast_ids = largest_component_fast(g)
            slow, slow_ids = g.largest_component()
            assert np.array_equal(fast_ids, slow_ids)
            assert fast == slow

    def test_induced_subgraph_matches_slow(self):
        g = union_disjoint(
            from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]),
            from_edges(3, [(0, 1), (1, 2)]),
            bridge_edges=[(0, 0)],
        )
        mask = np.zeros(g.num_nodes, dtype=bool)
        mask[[0, 1, 3, 4, 5]] = True
        fast, fast_ids = induced_subgraph_fast(g, mask)
        slow, slow_ids = g.induced_subgraph(np.flatnonzero(mask))
        assert np.array_equal(fast_ids, slow_ids)
        assert fast == slow

    def test_empty_graph_raises(self):
        with pytest.raises(EmptyGraphError):
            largest_component_fast(from_edges(0, []))

    def test_tie_break_matches_bfs(self):
        # Two equal-size components: both paths pick the first-discovered.
        g = union_disjoint(
            from_edges(3, [(0, 1), (1, 2)]),
            from_edges(3, [(0, 1), (1, 2)]),
        )
        fast, fast_ids = largest_component_fast(g)
        slow, slow_ids = g.largest_component()
        assert np.array_equal(fast_ids, slow_ids)
