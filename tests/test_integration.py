"""Integration tests: cross-module pipelines and the runnable examples.

These exercise the same paths the benchmarks and examples use, at reduced
scale, so a plain ``pytest tests/`` already covers the end-to-end story.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestEndToEndPipelines:
    def test_full_figure1_pipeline_tiny(self):
        from repro.datasets import synthetic_atp_dblp
        from repro.dynamics import DiffusionGrid, PPR
        from repro.ncp import figure1_comparison

        graph = synthetic_atp_dblp(scale="tiny", seed=2).graph
        result = figure1_comparison(
            graph,
            grid=DiffusionGrid(
                PPR(alpha=(0.05,)), epsilons=(1e-4,), num_seeds=8, seed=3
            ),
            num_buckets=5,
            seed=3,
        )
        assert result.spectral_candidates > 0
        assert result.flow_candidates > 0
        assert len(result.joint_buckets()) >= 2
        # All three headline fractions are well-defined.
        assert np.isfinite(result.flow_wins_conductance())

    def test_theorem_then_partition_pipeline(self, ring):
        # Verify the SDP theorem, then use the same graph's Fiedler vector
        # for a certified cut — the two halves of the paper's story.
        from repro.core import verify_paper_theorem
        from repro.partition import cheeger_certificate

        reports = verify_paper_theorem(ring)
        assert all(r.diffusion_vs_closed_form < 1e-8 for r in reports)
        low, phi, high = cheeger_certificate(ring)
        assert low <= phi <= high

    def test_local_to_global_consistency(self, whiskered):
        # A local cluster's conductance is an upper bound for the global
        # minimum conductance found by the spectral pipeline... in general
        # there is no ordering, but both must be valid cuts.
        from repro.dynamics import PPR
        from repro.partition import local_cluster, spectral_cut
        from repro.partition.metrics import conductance

        local = local_cluster(
            whiskered, [41], PPR(alpha=0.1), epsilon=1e-4
        )
        global_cut = spectral_cut(whiskered, method="lanczos", seed=0)
        assert conductance(whiskered, local.nodes) == pytest.approx(
            local.conductance
        )
        assert conductance(whiskered, global_cut.nodes) == pytest.approx(
            global_cut.conductance
        )

    def test_flow_pipeline_beats_spectral_on_conductance(self, whiskered):
        # The Figure 1(a) direction at miniature scale: best flow cluster
        # at whisker scale should be at least as good as the best spectral
        # prefix of matching size.
        from repro.dynamics import DiffusionGrid, PPR
        from repro.ncp.profile import (
            cluster_ensemble_ncp,
            flow_cluster_ensemble_ncp,
        )

        flow = flow_cluster_ensemble_ncp(whiskered, min_size=4, seed=0)
        spectral = cluster_ensemble_ncp(
            whiskered,
            DiffusionGrid(
                PPR(alpha=(0.05,)), epsilons=(1e-4,), num_seeds=10, seed=0
            ),
        )
        best_flow = min(c.conductance for c in flow)
        best_spectral = min(c.conductance for c in spectral)
        assert best_flow <= best_spectral + 0.05

    def test_mqi_improves_spectral_cut(self, lollipop):
        # spectral proposal -> MQI improvement: the Metis+MQI pattern.
        from repro.partition import mqi, spectral_cut

        proposal = spectral_cut(lollipop, method="exact")
        side = proposal.nodes
        if lollipop.degrees[side].sum() > lollipop.total_volume / 2:
            mask = np.zeros(lollipop.num_nodes, dtype=bool)
            mask[side] = True
            side = np.flatnonzero(~mask)
        improved = mqi(lollipop, side)
        assert improved.conductance <= proposal.conductance + 1e-12

    def test_serialization_roundtrip_through_pipeline(self, tmp_path, ring):
        from repro.graph.io import read_json, write_json
        from repro.linalg.fiedler import fiedler_value

        target = tmp_path / "ring.json"
        write_json(ring, target)
        reloaded = read_json(target)
        assert fiedler_value(reloaded, method="exact") == pytest.approx(
            fiedler_value(ring, method="exact")
        )


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "implicit_regularization_demo.py",
    "local_clustering.py",
])
def test_example_scripts_run(script, capsys, monkeypatch):
    """The lighter example scripts must run end to end and print output."""
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 200


def test_community_profile_example_importable():
    """The heavy examples at least expose a main() without running it."""
    import importlib.util

    for script in ("community_profile.py", "semi_supervised_seeding.py"):
        spec = importlib.util.spec_from_file_location(
            script[:-3], EXAMPLES_DIR / script
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)
