"""Tests for graph matrices against networkx oracles and spectral theory."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.build import from_edges
from repro.graph.matrices import (
    adjacency_matrix,
    combinatorial_laplacian,
    degree_matrix,
    laplacian_quadratic_form,
    lazy_walk_matrix,
    normalized_laplacian,
    random_walk_matrix,
    rayleigh_quotient,
    trivial_eigenvector,
)


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g


class TestAdjacencyAndDegrees:
    def test_adjacency_matches_networkx(self, ring):
        ours = adjacency_matrix(ring).toarray()
        theirs = nx.to_numpy_array(to_networkx(ring), nodelist=range(ring.num_nodes))
        assert np.allclose(ours, theirs)

    def test_degree_matrix_diagonal(self, weighted_triangle):
        D = degree_matrix(weighted_triangle).toarray()
        assert np.allclose(np.diag(D), weighted_triangle.degrees)
        assert np.allclose(D - np.diag(np.diag(D)), 0)


class TestLaplacians:
    def test_combinatorial_laplacian_matches_networkx(self, grid):
        ours = combinatorial_laplacian(grid).toarray()
        theirs = nx.laplacian_matrix(
            to_networkx(grid), nodelist=range(grid.num_nodes)
        ).toarray()
        assert np.allclose(ours, theirs)

    def test_normalized_laplacian_matches_networkx(self, ring):
        ours = normalized_laplacian(ring).toarray()
        theirs = nx.normalized_laplacian_matrix(
            to_networkx(ring), nodelist=range(ring.num_nodes)
        ).toarray()
        assert np.allclose(ours, theirs)

    def test_laplacian_rows_sum_to_zero(self, barbell):
        L = combinatorial_laplacian(barbell).toarray()
        assert np.allclose(L.sum(axis=1), 0.0)

    def test_laplacian_psd(self, whiskered):
        L = combinatorial_laplacian(whiskered).toarray()
        eigenvalues = np.linalg.eigvalsh(L)
        assert eigenvalues.min() >= -1e-10

    def test_normalized_laplacian_spectrum_in_0_2(self, planted):
        eigenvalues = np.linalg.eigvalsh(normalized_laplacian(planted).toarray())
        assert eigenvalues.min() >= -1e-10
        assert eigenvalues.max() <= 2.0 + 1e-10

    def test_normalized_laplacian_rejects_isolated_node(self):
        g = from_edges(3, [(0, 1)])
        with pytest.raises(GraphError, match="positive"):
            normalized_laplacian(g)

    def test_quadratic_form_matches_matrix(self, weighted_triangle, rng):
        x = rng.standard_normal(3)
        L = combinatorial_laplacian(weighted_triangle)
        assert laplacian_quadratic_form(weighted_triangle, x) == pytest.approx(
            float(x @ (L @ x))
        )

    def test_quadratic_form_zero_on_constants(self, grid):
        ones = np.ones(grid.num_nodes)
        assert laplacian_quadratic_form(grid, ones) == pytest.approx(0.0)


class TestWalkMatrices:
    def test_random_walk_columns_stochastic(self, lollipop):
        M = random_walk_matrix(lollipop).toarray()
        assert np.allclose(M.sum(axis=0), 1.0)
        assert np.all(M >= 0)

    def test_lazy_walk_columns_stochastic(self, lollipop):
        W = lazy_walk_matrix(lollipop, 0.3).toarray()
        assert np.allclose(W.sum(axis=0), 1.0)
        assert np.allclose(np.diag(W), 0.3)

    def test_lazy_walk_preserves_probability(self, ring, rng):
        W = lazy_walk_matrix(ring, 0.5)
        p = rng.random(ring.num_nodes)
        p /= p.sum()
        assert (W @ p).sum() == pytest.approx(1.0)

    def test_stationary_distribution_is_degree(self, barbell):
        M = random_walk_matrix(barbell)
        pi = barbell.degrees / barbell.total_volume
        assert np.allclose(M @ pi, pi)


class TestTrivialEigenvector:
    def test_kernel_of_normalized_laplacian(self, whiskered):
        v1 = trivial_eigenvector(whiskered)
        L = normalized_laplacian(whiskered)
        assert np.abs(L @ v1).max() < 1e-12
        assert np.linalg.norm(v1) == pytest.approx(1.0)

    def test_proportional_to_sqrt_degrees(self, weighted_triangle):
        v1 = trivial_eigenvector(weighted_triangle)
        expected = np.sqrt(weighted_triangle.degrees)
        expected /= np.linalg.norm(expected)
        assert np.allclose(v1, expected)


class TestRayleighQuotient:
    def test_bounded_by_spectrum(self, ring, rng):
        L = normalized_laplacian(ring)
        eigenvalues = np.linalg.eigvalsh(L.toarray())
        for _ in range(5):
            x = rng.standard_normal(ring.num_nodes)
            q = rayleigh_quotient(L, x)
            assert eigenvalues.min() - 1e-10 <= q <= eigenvalues.max() + 1e-10

    def test_eigenvector_achieves_eigenvalue(self, grid):
        L = normalized_laplacian(grid).toarray()
        values, vectors = np.linalg.eigh(L)
        assert rayleigh_quotient(L, vectors[:, 3]) == pytest.approx(values[3])

    def test_zero_vector_rejected(self, triangle):
        L = normalized_laplacian(triangle)
        with pytest.raises(GraphError):
            rayleigh_quotient(L, np.zeros(3))
