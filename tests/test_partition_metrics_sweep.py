"""Tests for conductance metrics and sweep cuts."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.graph.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.partition.metrics import (
    balance,
    cheeger_lower_bound,
    cheeger_upper_bound,
    conductance,
    cut_and_volumes,
    expansion,
    graph_conductance_exact,
    internal_conductance,
    normalized_cut,
)
from repro.partition.sweep import all_prefix_clusters, sweep_cut


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_weighted_edges_from(graph.edges())
    return g


class TestConductance:
    def test_matches_networkx(self, ring):
        side = list(range(13))
        ours = conductance(ring, side)
        theirs = nx.conductance(to_networkx(ring), side, weight="weight")
        assert ours == pytest.approx(theirs)

    def test_symmetric_in_complement(self, lollipop):
        side = list(range(9))
        other = [u for u in range(lollipop.num_nodes) if u not in side]
        assert conductance(lollipop, side) == pytest.approx(
            conductance(lollipop, other)
        )

    def test_barbell_bridge_value(self):
        g = barbell_graph(6)
        # cut = 1, vol(side) = 6*5 + 1 = 31.
        assert conductance(g, range(6)) == pytest.approx(1 / 31)

    def test_cycle_arc(self):
        g = cycle_graph(10)
        assert conductance(g, range(5)) == pytest.approx(2 / 10)

    def test_empty_or_full_rejected(self, triangle):
        with pytest.raises(PartitionError):
            conductance(triangle, [])
        with pytest.raises(PartitionError):
            conductance(triangle, [0, 1, 2])

    def test_expansion_on_cycle(self):
        g = cycle_graph(8)
        assert expansion(g, range(4)) == pytest.approx(2 / 4)

    def test_normalized_cut_relation(self, ring):
        side = list(range(11))
        cut, vol_s, vol_rest = cut_and_volumes(ring, side)
        expected = cut / vol_s + cut / vol_rest
        assert normalized_cut(ring, side) == pytest.approx(expected)

    def test_balance_range(self, whiskered, rng):
        for _ in range(5):
            k = int(rng.integers(1, whiskered.num_nodes - 1))
            side = rng.choice(whiskered.num_nodes, size=k, replace=False)
            b = balance(whiskered, side)
            assert 0 < b <= 0.5


class TestExactConductance:
    def test_path_graph(self):
        # Best cut of a path splits at an end edge of the half: for P4,
        # cutting into {0,1} | {2,3} costs 1 with min vol 3.
        g = path_graph(4)
        value, members = graph_conductance_exact(g)
        assert value == pytest.approx(1 / 3)

    def test_complete_graph_value(self):
        # K_6: any split has conductance >= ~0.6; best is the half split.
        g = complete_graph(6)
        value, members = graph_conductance_exact(g)
        assert len(members) == 3
        assert value == pytest.approx(9 / 15)

    def test_barbell_exact_is_bridge(self):
        g = barbell_graph(5)
        value, members = graph_conductance_exact(g)
        assert sorted(members) == [0, 1, 2, 3, 4]
        assert value == pytest.approx(1 / 21)

    def test_refuses_large_graphs(self, whiskered):
        with pytest.raises(PartitionError):
            graph_conductance_exact(whiskered)


class TestCheegerBounds:
    def test_bounds_sandwich_exact_optimum(self):
        from repro.linalg.fiedler import fiedler_value

        for graph in (barbell_graph(5), cycle_graph(12), path_graph(10)):
            lam2 = fiedler_value(graph, method="exact")
            phi, _ = graph_conductance_exact(graph)
            assert cheeger_lower_bound(lam2) <= phi + 1e-10
            assert phi <= cheeger_upper_bound(lam2) + 1e-10


class TestSweepCut:
    def test_finds_planted_cut_on_barbell(self, barbell):
        from repro.linalg.fiedler import fiedler_embedding

        y = fiedler_embedding(barbell, method="exact")
        result = sweep_cut(barbell, y, degree_normalize=False)
        assert result.size == 8  # one clique
        assert result.conductance == pytest.approx(1 / 57)

    def test_profile_matches_direct_evaluation(self, ring, rng):
        scores = rng.random(ring.num_nodes)
        result = sweep_cut(ring, scores, degree_normalize=False)
        for k in (1, 5, 10, 20):
            prefix = result.order[:k]
            assert result.profile[k - 1] == pytest.approx(
                conductance(ring, prefix)
            )

    def test_restriction_respected(self, ring, rng):
        scores = rng.random(ring.num_nodes)
        allowed = np.arange(10)
        result = sweep_cut(
            ring, scores, degree_normalize=False, restrict_to=allowed
        )
        assert set(result.nodes.tolist()) <= set(allowed.tolist())

    def test_max_volume_cap(self, ring, rng):
        scores = rng.random(ring.num_nodes)
        result = sweep_cut(
            ring, scores, degree_normalize=False, max_volume=30.0
        )
        assert result.volume <= 30.0

    def test_min_size_respected(self, barbell, rng):
        scores = rng.random(barbell.num_nodes)
        result = sweep_cut(
            barbell, scores, degree_normalize=False, min_size=5
        )
        assert result.size >= 5

    def test_degree_normalization_changes_order(self, lollipop):
        # A vector proportional to degree: normalized sweep is uniform
        # (ties), unnormalized puts clique nodes first.
        scores = lollipop.degrees.astype(float)
        unnormalized = sweep_cut(lollipop, scores, degree_normalize=False)
        assert set(unnormalized.order[:4].tolist()) <= set(range(8))

    def test_empty_restriction_rejected(self, ring, rng):
        with pytest.raises(PartitionError):
            sweep_cut(ring, rng.random(ring.num_nodes),
                      restrict_to=np.array([], dtype=np.int64))

    def test_all_prefix_clusters_rows(self, barbell):
        from repro.linalg.fiedler import fiedler_embedding

        y = fiedler_embedding(barbell, method="exact")
        rows, order = all_prefix_clusters(barbell, y, degree_normalize=False)
        sizes = [r[0] for r in rows]
        assert sizes == sorted(sizes)
        best = min(r[1] for r in rows)
        assert best == pytest.approx(1 / 57)


class TestInternalConductance:
    def test_clique_is_well_knit(self, barbell):
        phi_internal = internal_conductance(barbell, range(8))
        assert phi_internal > 0.4  # a clique has high internal conductance

    def test_path_cluster_is_stringy(self, lollipop):
        tail = list(range(8, 20))
        phi_internal = internal_conductance(lollipop, tail)
        # A path's internal conductance is tiny.
        assert phi_internal < 0.35

    def test_disconnected_cluster_zero(self, ring):
        # Two nodes from different cliques with no edge.
        assert internal_conductance(ring, [0, 12]) == 0.0

    def test_singleton_infinite(self, ring):
        assert internal_conductance(ring, [0]) == float("inf")
