"""Tests for the power method and Lanczos eigensolvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.graph.matrices import normalized_laplacian, trivial_eigenvector
from repro.linalg.lanczos import lanczos, lanczos_extreme_eigenpairs
from repro.linalg.power import power_method, power_method_trajectory


def random_spd(n, rng, *, spread=10.0):
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    values = np.linspace(1.0, spread, n)
    return (q * values) @ q.T, values, q


class TestPowerMethod:
    def test_dominant_eigenpair(self, rng):
        A, values, q = random_spd(12, rng)
        result = power_method(A, 12, seed=0)
        assert result.converged
        assert result.eigenvalue == pytest.approx(values[-1], rel=1e-8)
        top = q[:, -1]
        assert min(
            np.linalg.norm(result.eigenvector - top),
            np.linalg.norm(result.eigenvector + top),
        ) < 1e-6

    def test_callable_operator(self, rng):
        A, values, _ = random_spd(8, rng)
        result = power_method(lambda x: A @ x, 8, seed=1)
        assert result.eigenvalue == pytest.approx(values[-1], rel=1e-8)

    def test_deflation_finds_second(self, rng):
        A, values, q = random_spd(10, rng)
        result = power_method(A, 10, deflate=[q[:, -1]], seed=2)
        assert result.eigenvalue == pytest.approx(values[-2], rel=1e-6)

    def test_residual_reported(self, rng):
        A, _, _ = random_spd(6, rng)
        result = power_method(A, 6, seed=3)
        assert result.residual < 1e-6

    def test_eigenvalue_history_monotone_for_psd(self, rng):
        # On a PSD matrix, the Rayleigh quotient of power iterates is
        # nondecreasing.
        A, _, _ = random_spd(9, rng)
        result = power_method(A, 9, seed=4, keep_iterates=True)
        history = result.eigenvalue_history
        assert all(b >= a - 1e-9 for a, b in zip(history, history[1:]))

    def test_nonconvergence_raises(self, rng):
        A, _, _ = random_spd(20, rng, spread=1.05)  # tiny gap: slow
        with pytest.raises(ConvergenceError):
            power_method(A, 20, tol=1e-14, max_iterations=3, seed=5)

    def test_nonconvergence_tolerated(self, rng):
        A, _, _ = random_spd(20, rng, spread=1.05)
        result = power_method(
            A, 20, tol=1e-14, max_iterations=3, seed=5,
            raise_on_failure=False,
        )
        assert not result.converged

    def test_start_in_deflated_space_rejected(self, rng):
        A, _, q = random_spd(5, rng)
        with pytest.raises(InvalidParameterError):
            power_method(A, 5, x0=q[:, 0], deflate=[q[:, 0]])

    def test_trajectory_length(self, rng):
        A, _, _ = random_spd(7, rng)
        iterates = power_method_trajectory(A, 7, 5, seed=6)
        assert len(iterates) == 5
        for v in iterates:
            assert np.linalg.norm(v) == pytest.approx(1.0)


class TestLanczos:
    def test_full_decomposition_reproduces_spectrum(self, rng):
        A, values, _ = random_spd(15, rng)
        decomposition = lanczos(A, 15, 15, seed=0)
        ritz, _ = decomposition.ritz_pairs()
        assert np.allclose(np.sort(ritz), values, atol=1e-8)

    def test_partial_decomposition_relation(self, rng):
        # A V_k = V_k T_k + beta_k v_{k+1} e_k^T implies
        # ||A V - V T|| has rank-one structure; check column residuals.
        A, _, _ = random_spd(20, rng)
        k = 8
        d = lanczos(A, 20, k, seed=1)
        T = np.diag(d.alphas) + np.diag(d.betas, 1) + np.diag(d.betas, -1)
        residual = A @ d.basis - d.basis @ T
        # All but the last column should be ~0.
        assert np.abs(residual[:, :-1]).max() < 1e-8

    def test_basis_orthonormal(self, rng):
        A, _, _ = random_spd(25, rng)
        d = lanczos(A, 25, 12, seed=2)
        gram = d.basis.T @ d.basis
        assert np.allclose(gram, np.eye(12), atol=1e-10)

    def test_extreme_eigenpairs_smallest(self, rng):
        A, values, q = random_spd(18, rng)
        got_values, got_vectors = lanczos_extreme_eigenpairs(
            A, 18, 2, which="smallest", num_steps=18, seed=3
        )
        assert np.allclose(got_values, values[:2], atol=1e-8)
        for j in range(2):
            overlap = abs(got_vectors[:, j] @ q[:, j])
            assert overlap == pytest.approx(1.0, abs=1e-6)

    def test_extreme_eigenpairs_largest(self, rng):
        A, values, _ = random_spd(18, rng)
        got_values, _ = lanczos_extreme_eigenpairs(
            A, 18, 3, which="largest", num_steps=18, seed=4
        )
        assert np.allclose(got_values, values[-3:], atol=1e-8)

    def test_breakdown_on_low_rank(self):
        # Rank-2 matrix: Krylov space is invariant after 2 steps.
        u = np.array([1.0, 0, 0, 0])
        v = np.array([0, 1.0, 0, 0])
        A = 3 * np.outer(u, u) + 2 * np.outer(v, v)
        d = lanczos(A, 4, 4, v0=u + v)
        assert d.breakdown
        assert d.num_steps <= 3

    def test_deflation_respected(self, ring):
        L = normalized_laplacian(ring)
        trivial = trivial_eigenvector(ring)
        d = lanczos(L, ring.num_nodes, 20, deflate=[trivial], seed=5)
        # All basis vectors orthogonal to the trivial direction.
        assert np.abs(d.basis.T @ trivial).max() < 1e-10

    def test_invalid_which_rejected(self, rng):
        A, _, _ = random_spd(5, rng)
        with pytest.raises(InvalidParameterError):
            lanczos_extreme_eigenpairs(A, 5, 1, which="middle")

    def test_lanczos_matches_numpy_on_laplacian(self, grid):
        L = normalized_laplacian(grid)
        exact = np.linalg.eigvalsh(L.toarray())
        got, _ = lanczos_extreme_eigenpairs(
            L, grid.num_nodes, 1, which="smallest",
            num_steps=grid.num_nodes, seed=6,
        )
        assert got[0] == pytest.approx(exact[0], abs=1e-9)
