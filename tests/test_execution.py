"""Tests for :mod:`repro.execution`: registry, driver, executors, resume.

The execution layer's contract is that *how* chunks run never changes
*what* they produce: every registered executor — serial, the shared-
memory process pool, and the deterministic chaos fault injector — must
yield byte-identical candidate ensembles, through retries, straggler
re-dispatch, pool recreation after real worker deaths, corrupted memo
entries, and crash-then-resume.  Property tests (hypothesis) pin the
resume-plan partition invariant and fault-plan independence; the worker
death tests kill real pool processes with ``os._exit``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import DiffusionGrid, PPR
from repro.exceptions import InvalidParameterError, ReproError
from repro.execution import (
    Chaos,
    ChaosExecutor,
    ChunkExecutionError,
    ExecutionOutcome,
    ExecutorKind,
    Fault,
    FaultPlan,
    InjectedFaultError,
    ProcessExecutor,
    ProcessPool,
    RetryPolicy,
    RunAbortedError,
    Serial,
    SerialExecutor,
    UnknownExecutorError,
    as_executor_spec,
    build_executor,
    execute_chunks,
    get_executor,
    pending_chunks,
    register_executor,
    registered_executors,
    resolve_executor_name,
    unregister_executor,
)
from repro.graph.generators import cycle_graph
from repro.ncp.runner import run_ncp_ensemble


def candidate_signature(candidates):
    """Order-sensitive exact signature of a candidate ensemble."""
    return [
        (c.nodes.tobytes(), c.conductance, c.method) for c in candidates
    ]


def small_grid(**overrides):
    base = dict(
        dynamics=PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=6, seed=3,
    )
    base.update(overrides)
    return DiffusionGrid(**base)


# ---------------------------------------------------------------------------
# Module-level chunk/evaluate doubles (module level so the process pool
# can pickle them by reference).


@dataclass(frozen=True)
class FakeChunk:
    """Minimal chunk double: an index, a dynamics label, a describe()."""

    index: int
    dynamics: str = "fake"

    def describe(self):
        return f"fake[{self.index}]"


@dataclass(frozen=True)
class DyingChunk:
    """Chunk double instructing :func:`dying_evaluate` how to fail.

    ``marker == "always"`` kills the worker process on every attempt;
    any other non-empty value is a path the first attempt creates before
    dying, so later attempts (in a recreated pool) succeed.
    """

    index: int
    marker: str = ""
    seconds: float = 0.0
    dynamics: str = "fake"

    def describe(self):
        return f"dying[{self.index}]"


def fake_evaluate(graph, chunk):
    """Deterministic, graph-independent chunk result."""
    return [("candidate", chunk.index, 2 * chunk.index)]


def dying_evaluate(graph, chunk):
    """Evaluate double that can kill its own worker process."""
    if chunk.marker == "always":
        os._exit(17)
    if chunk.marker:
        flag = Path(chunk.marker)
        if not flag.exists():
            flag.write_text("died", encoding="utf-8")
            os._exit(17)
    if chunk.seconds:
        time.sleep(chunk.seconds)
    return [("candidate", chunk.index)]


def expected_results(chunks):
    return {chunk.index: fake_evaluate(None, chunk) for chunk in chunks}


FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.0, straggler_factor=None,
    min_straggler_seconds=0.0,
)


# ---------------------------------------------------------------------------
# Registry semantics.


class TestExecutorRegistry:
    def test_builtin_executors_present(self):
        assert set(registered_executors()) >= {"serial", "process", "chaos"}

    def test_aliases_resolve(self):
        assert resolve_executor_name("sync") == "serial"
        assert resolve_executor_name("inline") == "serial"
        assert resolve_executor_name("pool") == "process"
        assert resolve_executor_name("multiprocessing") == "process"
        assert resolve_executor_name("faults") == "chaos"
        assert resolve_executor_name("fault_injection") == "chaos"

    def test_resolution_normalizes_case_and_separators(self):
        assert resolve_executor_name(" Serial ") == "serial"
        assert resolve_executor_name("FAULT-INJECTION") == "chaos"

    def test_spec_instances_and_kinds_resolve(self):
        assert resolve_executor_name(Serial()) == "serial"
        assert resolve_executor_name(ProcessPool()) == "process"
        assert resolve_executor_name(Chaos(seed=5)) == "chaos"
        assert resolve_executor_name(get_executor("serial")) == "serial"

    def test_unknown_executor_error_type_and_suggestion(self):
        with pytest.raises(UnknownExecutorError) as excinfo:
            get_executor("serail")
        assert isinstance(excinfo.value, InvalidParameterError)
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, KeyError)
        message = str(excinfo.value)
        assert "did you mean 'serial'" in message
        assert "process" in message

    def test_unresolvable_object_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_executor_name(object())

    def test_as_executor_spec_defaults_and_passthrough(self):
        assert as_executor_spec("serial") == Serial()
        assert as_executor_spec("pool") == ProcessPool()
        spec = Chaos(seed=9, kills=1)
        assert as_executor_spec(spec) is spec

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_executor(get_executor("serial"))
        with pytest.raises(InvalidParameterError):
            register_executor(ExecutorKind(
                key="fresh", description="alias collision",
                aliases=("sync",), spec_type=Serial,
            ))

    def test_register_needs_an_executor_kind(self):
        with pytest.raises(InvalidParameterError):
            register_executor("serial")

    def test_replayable_flags(self):
        assert get_executor("serial").replayable
        assert get_executor("process").replayable
        assert not get_executor("chaos").replayable

    def test_third_party_executor_end_to_end(self):
        @dataclass(frozen=True)
        class Echo:
            def token(self):
                return "echo"

            def params(self):
                return {"flavor": "test"}

        class EchoExecutor(SerialExecutor):
            pass

        register_executor(ExecutorKind(
            key="echo", description="third-party example",
            aliases=("echoes",), spec_type=Echo,
            factory=lambda spec, *, graph, evaluate, num_workers=0:
                EchoExecutor(graph, evaluate),
        ))
        try:
            graph = cycle_graph(24)
            grid = small_grid()
            reference = run_ncp_ensemble(graph, grid, seeds_per_chunk=2)
            echoed = run_ncp_ensemble(
                graph, grid, seeds_per_chunk=2, executor="echoes",
            )
            assert candidate_signature(echoed.candidates) == \
                candidate_signature(reference.candidates)
            assert echoed.executor == "echo"
            assert echoed.executor_params == {"flavor": "test"}
        finally:
            unregister_executor("echo")
        with pytest.raises(UnknownExecutorError):
            get_executor("echo")


# ---------------------------------------------------------------------------
# Retry policy and fault plans.


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(straggler_factor=0.0)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_cap_seconds=0.35)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.35)
        assert policy.backoff_for(10) == pytest.approx(0.35)

    def test_straggler_deadline_floor_and_disable(self):
        policy = RetryPolicy(straggler_factor=4.0,
                             min_straggler_seconds=0.25)
        assert policy.straggler_deadline(1.0) == pytest.approx(4.0)
        assert policy.straggler_deadline(0.001) == pytest.approx(0.25)
        assert RetryPolicy(straggler_factor=None).straggler_deadline(9) \
            is None


class TestFaultPlan:
    def test_fault_validation(self):
        with pytest.raises(InvalidParameterError):
            Fault(kind="explode", chunk=0)
        with pytest.raises(InvalidParameterError):
            Fault(kind="kill", chunk=-1)
        with pytest.raises(InvalidParameterError):
            FaultPlan(faults=("kill",))

    def test_seeded_plans_are_deterministic(self):
        plan_a = FaultPlan.seeded(7, 10, kills=3, delays=2, corrupts=1)
        plan_b = FaultPlan.seeded(7, 10, kills=3, delays=2, corrupts=1)
        assert plan_a == plan_b
        assert plan_a != FaultPlan.seeded(8, 10, kills=3, delays=2,
                                          corrupts=1)

    def test_repeated_kills_escalate_attempts(self):
        plan = FaultPlan.seeded(0, 1, kills=3)
        kill_attempts = sorted(
            fault.attempt for fault in plan.faults if fault.kind == "kill"
        )
        assert kill_attempts == [0, 1, 2]

    def test_jsonable_round_trip_fields(self):
        plan = FaultPlan(
            faults=(Fault(kind="delay", chunk=2, seconds=0.5),),
            abort_after=3,
        )
        payload = plan.jsonable()
        assert payload["abort_after"] == 3
        assert payload["faults"][0]["kind"] == "delay"
        assert payload["faults"][0]["chunk"] == 2


# ---------------------------------------------------------------------------
# The driver over the serial executor.


class TestDriver:
    def test_serial_execution_collects_everything(self):
        chunks = [FakeChunk(i) for i in range(5)]
        outcome = execute_chunks(
            SerialExecutor(None, fake_evaluate), chunks, retry=FAST_RETRY,
        )
        assert isinstance(outcome, ExecutionOutcome)
        assert outcome.results == expected_results(chunks)
        assert outcome.retries == 0
        assert outcome.redispatches == 0
        assert all(outcome.attempts[i] == 1 for i in range(5))

    def test_on_result_fires_exactly_once_per_chunk(self):
        seen = []
        chunks = [FakeChunk(i) for i in range(4)]
        execute_chunks(
            SerialExecutor(None, fake_evaluate), chunks, retry=FAST_RETRY,
            on_result=lambda chunk, result: seen.append(chunk.index),
        )
        assert sorted(seen) == [0, 1, 2, 3]

    def test_duplicate_chunk_indices_rejected(self):
        with pytest.raises(InvalidParameterError):
            execute_chunks(
                SerialExecutor(None, fake_evaluate),
                [FakeChunk(1), FakeChunk(1)],
            )

    def test_pending_chunks_rejects_foreign_indices(self):
        chunks = [FakeChunk(i) for i in range(3)]
        with pytest.raises(InvalidParameterError):
            pending_chunks(chunks, {5})


# ---------------------------------------------------------------------------
# Chaos: deterministic fault injection.


class TestChaosExecutor:
    def test_injected_kills_retry_to_identical_results(self):
        chunks = [FakeChunk(i) for i in range(4)]
        spec = Chaos(seed=3, kills=2, delays=1, delay_seconds=0.0)
        outcome = execute_chunks(
            ChaosExecutor(None, fake_evaluate, spec=spec), chunks,
            retry=FAST_RETRY,
        )
        assert outcome.results == expected_results(chunks)
        assert outcome.retries == 2

    def test_exhausted_attempts_raise_typed_error(self):
        chunks = [FakeChunk(0), FakeChunk(1)]
        spec = Chaos(faults=(
            Fault(kind="kill", chunk=1, attempt=0),
            Fault(kind="kill", chunk=1, attempt=1),
        ))
        with pytest.raises(ChunkExecutionError) as excinfo:
            execute_chunks(
                ChaosExecutor(None, fake_evaluate, spec=spec), chunks,
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0,
                                  straggler_factor=None),
                fingerprint="fp-test",
            )
        error = excinfo.value
        assert isinstance(error, ReproError)
        assert error.chunk_index == 1
        assert error.attempts == 2
        assert error.fingerprint == "fp-test"
        assert "InjectedFaultError" in error.worker_traceback
        assert isinstance(error.__cause__, InjectedFaultError)

    def test_abort_after_raises_with_completed_count(self):
        chunks = [FakeChunk(i) for i in range(5)]
        spec = Chaos(abort_after=2)
        with pytest.raises(RunAbortedError) as excinfo:
            execute_chunks(
                ChaosExecutor(None, fake_evaluate, spec=spec), chunks,
                retry=FAST_RETRY,
            )
        assert excinfo.value.completed_chunks == 2

    def test_chaos_run_matches_serial_through_the_runner(self):
        graph = cycle_graph(30)
        grid = small_grid()
        reference = run_ncp_ensemble(graph, grid, seeds_per_chunk=2)
        chaotic = run_ncp_ensemble(
            graph, grid, seeds_per_chunk=2,
            executor=Chaos(seed=11, kills=2, delays=1, delay_seconds=0.0),
            retry=RetryPolicy(backoff_seconds=0.0, straggler_factor=None),
        )
        assert candidate_signature(chaotic.candidates) == \
            candidate_signature(reference.candidates)
        assert chaotic.executor == "chaos"
        assert chaotic.retries == 2

    def test_corrupt_fault_means_next_run_recomputes(self, tmp_path):
        graph = cycle_graph(30)
        grid = small_grid()
        first = run_ncp_ensemble(
            graph, grid, seeds_per_chunk=2, cache_dir=tmp_path,
            executor=Chaos(seed=0, corrupts=1),
        )
        assert first.cache_hits == 0
        second = run_ncp_ensemble(
            graph, grid, seeds_per_chunk=2, cache_dir=tmp_path,
        )
        # Exactly the corrupted entry reads back as a miss and is
        # recomputed (and rewritten: a third run is all hits).
        assert second.cache_hits == second.num_chunks - 1
        assert candidate_signature(second.candidates) == \
            candidate_signature(first.candidates)
        third = run_ncp_ensemble(
            graph, grid, seeds_per_chunk=2, cache_dir=tmp_path,
        )
        assert third.cache_hits == third.num_chunks


# ---------------------------------------------------------------------------
# The process pool: real workers, real deaths.


class TestProcessExecutor:
    def test_worker_death_is_wrapped_in_typed_repro_error(self):
        graph = cycle_graph(16)
        chunks = [DyingChunk(0), DyingChunk(1, marker="always")]
        with pytest.raises(ChunkExecutionError) as excinfo:
            execute_chunks(
                ProcessExecutor(graph, dying_evaluate, num_workers=1),
                chunks,
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0,
                                  straggler_factor=None),
                fingerprint="fp-death",
            )
        error = excinfo.value
        assert isinstance(error, ReproError)
        assert error.chunk_index == 1
        assert error.attempts == 2
        assert error.fingerprint == "fp-death"
        assert "BrokenProcessPool" in error.worker_traceback

    def test_pool_is_recreated_after_a_worker_death(self, tmp_path):
        graph = cycle_graph(16)
        flag = tmp_path / "died-once"
        chunks = [
            DyingChunk(0),
            DyingChunk(1, marker=str(flag)),
            DyingChunk(2),
        ]
        outcome = execute_chunks(
            ProcessExecutor(graph, dying_evaluate, num_workers=1), chunks,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.0,
                              straggler_factor=None),
        )
        assert flag.exists()
        assert outcome.results[1] == [("candidate", 1)]
        assert set(outcome.results) == {0, 1, 2}
        assert outcome.retries >= 1
        assert outcome.attempts[1] >= 2

    def test_straggler_redispatch_keeps_results_identical(self):
        graph = cycle_graph(16)
        chunks = [DyingChunk(0, seconds=1.5)] + [
            DyingChunk(i) for i in range(1, 6)
        ]
        outcome = execute_chunks(
            ProcessExecutor(graph, dying_evaluate, num_workers=2), chunks,
            retry=RetryPolicy(straggler_factor=1.0,
                              min_straggler_seconds=0.05),
        )
        assert outcome.results == {
            chunk.index: [("candidate", chunk.index)] for chunk in chunks
        }
        assert outcome.redispatches >= 1
        # A re-dispatch is not a retry: nothing failed.
        assert outcome.retries == 0

    def test_process_run_matches_serial_through_the_runner(self):
        graph = cycle_graph(30)
        grid = small_grid()
        reference = run_ncp_ensemble(graph, grid, seeds_per_chunk=2)
        pooled = run_ncp_ensemble(
            graph, grid, seeds_per_chunk=2, num_workers=2,
            executor="process",
        )
        assert candidate_signature(pooled.candidates) == \
            candidate_signature(reference.candidates)
        assert pooled.executor == "process"

    def test_build_executor_clamps_worker_count(self):
        graph = cycle_graph(8)
        instance, spec, kind = build_executor(
            "process", graph=graph, evaluate=fake_evaluate, num_workers=0,
        )
        assert isinstance(instance, ProcessExecutor)
        assert spec == ProcessPool()
        assert kind.key == "process"


# ---------------------------------------------------------------------------
# Crash-then-resume at the runner level.


class TestCrashThenResume:
    @pytest.mark.parametrize("resume_workers", [0, 2])
    def test_aborted_run_resumes_byte_identically(self, tmp_path,
                                                  resume_workers):
        graph = cycle_graph(30)
        grid = small_grid()
        uninterrupted = run_ncp_ensemble(graph, grid, seeds_per_chunk=2)
        with pytest.raises(RunAbortedError):
            run_ncp_ensemble(
                graph, grid, seeds_per_chunk=2, cache_dir=tmp_path,
                executor=Chaos(abort_after=1),
            )
        # The aborted run left exactly its completed chunks on disk.
        assert len(list(tmp_path.glob("*.npz"))) == 1
        resumed = run_ncp_ensemble(
            graph, grid, seeds_per_chunk=2, cache_dir=tmp_path,
            num_workers=resume_workers,
        )
        assert candidate_signature(resumed.candidates) == \
            candidate_signature(uninterrupted.candidates)
        assert resumed.cache_hits == 1
        sources = {
            record["index"]: record["source"] for record in resumed.chunks
        }
        assert sources[0] == "cache"
        assert all(
            source == "computed"
            for index, source in sources.items() if index != 0
        )


# ---------------------------------------------------------------------------
# Property tests.


class TestExecutionProperties:
    @given(total=st.integers(0, 30), completed=st.sets(st.integers(0, 29)))
    @settings(max_examples=60, deadline=None)
    def test_resume_plan_partitions_the_full_plan(self, total, completed):
        chunks = [FakeChunk(i) for i in range(total)]
        completed = {index for index in completed if index < total}
        pending = pending_chunks(chunks, completed)
        pending_indices = [chunk.index for chunk in pending]
        # pending ∪ completed = full plan, pending ∩ completed = ∅,
        # and plan order is preserved.
        assert set(pending_indices) | completed == set(range(total))
        assert set(pending_indices) & completed == set()
        assert pending_indices == sorted(pending_indices)

    @given(
        seed=st.integers(0, 1000),
        kills=st.integers(0, 4),
        delays=st.integers(0, 3),
        num_chunks=st.integers(1, 8),
        abort_after=st.none() | st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_fault_plans_never_change_the_ensemble(self, seed, kills,
                                                   delays, num_chunks,
                                                   abort_after):
        chunks = [FakeChunk(i) for i in range(num_chunks)]
        reference = expected_results(chunks)
        spec = Chaos(seed=seed, kills=kills, delays=delays,
                     delay_seconds=0.0, abort_after=abort_after)
        policy = RetryPolicy(max_attempts=kills + 1, backoff_seconds=0.0,
                             straggler_factor=None)
        collected = {}
        try:
            outcome = execute_chunks(
                ChaosExecutor(None, fake_evaluate, spec=spec), chunks,
                retry=policy,
                on_result=lambda c, r: collected.__setitem__(c.index, r),
            )
        except RunAbortedError as aborted:
            # An abort is a crash, not corruption: every chunk that did
            # complete carries exactly the reference result.
            assert abort_after is not None
            assert len(collected) == aborted.completed_chunks
            assert all(
                collected[index] == reference[index] for index in collected
            )
        else:
            assert outcome.results == reference
            assert collected == reference
            assert outcome.retries == kills
