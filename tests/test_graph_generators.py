"""Tests for deterministic and random graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, InvalidParameterError
from repro.graph import generators as gen
from repro.graph import random_generators as rgen


class TestDeterministicFamilies:
    def test_path_counts(self):
        g = gen.path_graph(10)
        assert g.num_nodes == 10 and g.num_edges == 9
        assert g.degrees[0] == 1 and g.degrees[5] == 2

    def test_cycle_counts(self):
        g = gen.cycle_graph(7)
        assert g.num_edges == 7
        assert np.all(g.degrees == 2)

    def test_complete_counts(self):
        g = gen.complete_graph(9)
        assert g.num_edges == 36
        assert np.all(g.degrees == 8)

    def test_star(self):
        g = gen.star_graph(5)
        assert g.degrees[0] == 5
        assert np.all(g.degrees[1:] == 1)

    def test_grid_counts(self):
        g = gen.grid_graph(4, 5)
        assert g.num_nodes == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_torus_regular(self):
        g = gen.torus_graph(4, 5)
        assert np.all(g.degrees == 4)

    def test_barbell_bridge(self):
        g = gen.barbell_graph(6)
        assert g.cut_weight(range(6)) == 1.0
        assert g.is_connected()

    def test_barbell_with_path(self):
        g = gen.barbell_graph(5, 3)
        assert g.num_nodes == 13
        assert g.is_connected()

    def test_lollipop_structure(self):
        g = gen.lollipop_graph(6, 4)
        assert g.num_nodes == 10
        assert g.degrees[9] == 1  # end of the tail
        assert g.cut_weight(range(6)) == 1.0

    def test_roach_structure(self):
        g = gen.roach_graph(4, 4)
        assert g.num_nodes == 16
        assert g.is_connected()
        # Antenna tips have degree 1.
        assert g.degrees[7] == 1 and g.degrees[15] == 1
        # Severing the antennae costs exactly 2 edges.
        antennae = [4, 5, 6, 7, 12, 13, 14, 15]
        assert g.cut_weight(antennae) == 2.0

    def test_ladder(self):
        g = gen.ladder_graph(5)
        assert g.num_nodes == 10
        assert g.num_edges == 4 + 4 + 5

    def test_ring_of_cliques(self):
        g = gen.ring_of_cliques(4, 5)
        assert g.num_nodes == 20
        assert g.is_connected()
        # One clique is separated by exactly 2 bridge edges.
        assert g.cut_weight(range(5)) == 2.0

    def test_connected_caveman_is_connected(self):
        g = gen.connected_caveman_graph(5, 4)
        assert g.is_connected()

    def test_binary_tree(self):
        g = gen.binary_tree_graph(3)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert g.is_connected()

    def test_hypercube_regular(self):
        g = gen.hypercube_graph(4)
        assert g.num_nodes == 16
        assert np.all(g.degrees == 4)

    def test_weighted_path(self):
        g = gen.weighted_path_graph([1.0, 2.0, 0.5])
        assert g.edge_weight(1, 2) == 2.0

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            gen.cycle_graph(2)
        with pytest.raises(InvalidParameterError):
            gen.roach_graph(0, 3)
        with pytest.raises(InvalidParameterError):
            gen.weighted_path_graph([])


class TestRandomFamilies:
    def test_erdos_renyi_determinism(self):
        a = rgen.erdos_renyi_graph(50, 0.1, seed=3)
        b = rgen.erdos_renyi_graph(50, 0.1, seed=3)
        assert a == b

    def test_erdos_renyi_extremes(self):
        assert rgen.erdos_renyi_graph(10, 0.0, seed=0).num_edges == 0
        assert rgen.erdos_renyi_graph(10, 1.0, seed=0).num_edges == 45

    def test_random_regular_degrees(self):
        g = rgen.random_regular_graph(50, 6, seed=1)
        assert np.all(g.degrees == 6)

    def test_random_regular_parity_check(self):
        with pytest.raises(InvalidParameterError, match="even"):
            rgen.random_regular_graph(5, 3, seed=0)

    def test_random_regular_degree_bound(self):
        with pytest.raises(InvalidParameterError):
            rgen.random_regular_graph(4, 4, seed=0)

    def test_watts_strogatz_node_degree_sum(self):
        g = rgen.watts_strogatz_graph(40, 4, 0.2, seed=2)
        assert g.num_nodes == 40
        # Rewiring preserves the edge count.
        assert g.num_edges == 40 * 4 // 2

    def test_preferential_attachment_counts(self):
        g = rgen.preferential_attachment_graph(60, 3, seed=4)
        assert g.num_nodes == 60
        assert g.is_connected()
        # Heavy tail: max degree far above m.
        assert g.degrees.max() >= 3 * 3

    def test_powerlaw_cluster_has_triangles(self):
        from repro.graph.ops import triangle_count

        g = rgen.powerlaw_cluster_graph(80, 3, 0.8, seed=5)
        assert triangle_count(g) > 0

    def test_planted_partition_blocks_are_dense(self):
        g = rgen.planted_partition_graph(3, 20, 0.6, 0.01, seed=6)
        inside = g.induced_subgraph(range(20))[0].num_edges
        assert inside > 0.4 * (20 * 19 / 2)

    def test_sbm_respects_zero_probability(self):
        probs = np.array([[0.5, 0.0], [0.0, 0.5]])
        g = rgen.stochastic_block_model([15, 15], probs, seed=7)
        assert g.cut_weight(range(15)) == 0.0

    def test_sbm_probability_validation(self):
        with pytest.raises(InvalidParameterError):
            rgen.stochastic_block_model([5, 5], np.array([[0.5, 1.5], [1.5, 0.5]]))

    def test_block_labels(self):
        labels = rgen.block_labels([2, 3])
        assert labels.tolist() == [0, 0, 1, 1, 1]

    def test_forest_fire_connected(self):
        g = rgen.forest_fire_graph(100, 0.3, seed=8)
        assert g.is_connected()
        assert g.num_nodes == 100

    def test_whiskered_expander_structure(self):
        g = rgen.whiskered_expander(30, 4, 5, 4, seed=9)
        assert g.num_nodes == 30 + 5 * 4
        assert g.is_connected()
        # Whisker tips are degree-1.
        assert g.degrees[33] == 1

    def test_noisy_graph_keeps_node_count(self, ring):
        noisy = rgen.noisy_graph(ring, 0.1, seed=10)
        assert noisy.num_nodes == ring.num_nodes
        # Edge count stays within a reasonable band.
        assert abs(noisy.num_edges - ring.num_edges) <= 0.5 * ring.num_edges

    def test_noisy_graph_zero_noise_identity(self, ring):
        assert rgen.noisy_graph(ring, 0.0, seed=1) == ring


class TestGeneratorSeeding:
    @pytest.mark.parametrize("builder", [
        lambda s: rgen.random_regular_graph(30, 4, seed=s),
        lambda s: rgen.preferential_attachment_graph(30, 2, seed=s),
        lambda s: rgen.forest_fire_graph(30, 0.3, seed=s),
        lambda s: rgen.planted_partition_graph(3, 10, 0.5, 0.05, seed=s),
    ])
    def test_deterministic_given_seed(self, builder):
        assert builder(42) == builder(42)

    def test_different_seeds_differ(self):
        a = rgen.erdos_renyi_graph(40, 0.2, seed=1)
        b = rgen.erdos_renyi_graph(40, 0.2, seed=2)
        assert a != b
