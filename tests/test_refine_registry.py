"""Tests for the refiner registry, Pipeline specs, and refiner-aware NCP.

Covers the refinement layer end to end: registry round-trips and alias
identity, spec tokens, chain application with per-stage provenance, the
registry-driven flow ensemble, refiner-aware runner chunks (determinism,
cache-key versioning, provenance round-trip through the npz memo), the
``--refine`` spec-string parser and CLI runs, MQI convergence reporting,
the vectorized ``dilate``, and the previously untested
``mov.kappa_for_gamma`` / ``mqi_certificate`` paths.  An extension-point
test registers a toy refiner and runs it through the flow ensemble, the
runner, and the CLI parser untouched.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

import numpy as np
import pytest

from repro.cli import main
from repro.cli.manifest import load_manifest
from repro.cli.specs import parse_refiner_chain
from repro.datasets import load_graph
from repro.dynamics import DiffusionGrid, PPR
from repro.exceptions import InvalidParameterError, PartitionError
from repro.ncp.profile import (
    ClusterCandidate,
    cluster_ensemble_ncp,
    flow_cluster_ensemble_ncp,
)
from repro.ncp.runner import plan_chunks, run_ncp_ensemble
from repro.partition.flow_improve import dilate, flow_improve
from repro.partition.local import local_cluster
from repro.partition.metrics import conductance
from repro.partition.mov import kappa_for_gamma
from repro.partition.mqi import mqi, mqi_certificate
from repro.refine import (
    FlowImprove,
    MOV,
    MQI,
    Pipeline,
    RefinementStep,
    RefinerKind,
    UnknownRefinerError,
    apply_refiners,
    as_pipeline,
    as_refiner,
    as_refiner_chain,
    get_refiner,
    refine_candidates,
    register_refiner,
    registered_refiners,
    resolve_refiner_name,
    unregister_refiner,
)


def candidate_signature(candidates):
    return [
        (c.nodes.tobytes(), c.conductance, c.method, c.refinement)
        for c in candidates
    ]


class TestRegistry:
    def test_canonical_keys_present(self):
        assert set(registered_refiners()) >= {"mqi", "flow", "mov"}

    @pytest.mark.parametrize("spelling, key", [
        ("mqi", "mqi"), ("metis_mqi", "mqi"), ("Metis-MQI", "mqi"),
        ("flow", "flow"), ("flow_improve", "flow"), ("FlowImprove", "flow"),
        ("mov", "mov"), ("mov_cluster", "mov"),
    ])
    def test_alias_identity(self, spelling, key):
        assert get_refiner(spelling) is registered_refiners()[key]
        assert resolve_refiner_name(spelling) == key

    def test_lookup_by_spec_instance_type_and_kind(self):
        kind = get_refiner("mqi")
        assert get_refiner(MQI) is kind
        assert get_refiner(MQI(max_rounds=3)) is kind
        assert get_refiner(kind) is kind

    def test_unknown_refiner_error_is_valueerror_and_keyerror(self):
        with pytest.raises(UnknownRefinerError) as excinfo:
            get_refiner("frobnicate")
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, KeyError)
        assert "mqi" in str(excinfo.value)

    def test_foreign_spec_instance_rejected(self):
        @dataclass(frozen=True)
        class Foreign(MQI):
            name: ClassVar[str] = "foreign"

        with pytest.raises(UnknownRefinerError):
            as_refiner(Foreign())

    def test_register_rejects_taken_spellings(self):
        with pytest.raises(InvalidParameterError, match="already"):
            register_refiner(RefinerKind(
                name="Clash", key="mqi", description="x", spec_type=MQI,
            ))

    def test_tokens_are_canonical(self):
        assert MQI().token() == "mqi(max_rounds=100)"
        assert FlowImprove(dilation_radius=2).token() == (
            "flow(dilation_radius=2, max_rounds=50)"
        )
        assert MOV().token() == "mov(gamma_fraction=0.5, min_size=1)"

    def test_params_round_trip(self):
        for key, kind in registered_refiners().items():
            spec = kind.default_spec()
            rebuilt = kind.spec_type(**dict(spec.params()))
            assert rebuilt == spec, key

    def test_spec_validation(self):
        with pytest.raises(InvalidParameterError):
            MQI(max_rounds=0)
        with pytest.raises(InvalidParameterError):
            FlowImprove(dilation_radius=-1)
        with pytest.raises(InvalidParameterError):
            MOV(gamma_fraction=1.0)


class TestChains:
    def test_as_refiner_chain_normalizes(self):
        chain = as_refiner_chain(("mqi", FlowImprove(dilation_radius=2)))
        assert chain == (MQI(), FlowImprove(dilation_radius=2))
        assert as_refiner_chain("mqi") == (MQI(),)
        assert as_refiner_chain(None) == ()
        assert as_refiner_chain(()) == ()

    def test_apply_refiners_provenance_and_monotonicity(self, whiskered):
        nodes = np.arange(40, 46)  # a whisker + neighbors
        pre = conductance(whiskered, nodes)
        trace = apply_refiners(whiskered, nodes, ("mqi", "flow"))
        assert trace.initial_conductance == pytest.approx(pre)
        assert trace.final_conductance <= trace.initial_conductance + 1e-12
        assert len(trace.steps) == 2
        assert trace.steps[0].refiner == "mqi(max_rounds=100)"
        # Stage boundaries agree: post of stage k is pre of stage k+1.
        assert trace.steps[0].post_conductance == pytest.approx(
            trace.steps[1].pre_conductance
        )
        assert trace.final_conductance == pytest.approx(
            trace.steps[-1].post_conductance
        )
        assert 0 < trace.nodes.size < whiskered.num_nodes

    def test_unchanged_stage_keeps_exact_nodes(self, whiskered):
        # An MQI fixed point passes through MQI unchanged.
        fixed = mqi(whiskered, np.arange(40, 46)).nodes
        trace = apply_refiners(whiskered, fixed, ("mqi",))
        assert not trace.changed
        assert np.array_equal(trace.nodes, np.sort(fixed))
        assert trace.steps[0].changed is False
        assert trace.steps[0].converged is True

    def test_mqi_skips_oversized_sides(self, whiskered):
        # Volume above half the graph violates MQI's precondition; the
        # refiner passes the set through instead of raising.
        big = np.arange(whiskered.num_nodes - 3)
        trace = apply_refiners(whiskered, big, ("mqi",))
        assert not trace.changed
        assert np.array_equal(trace.nodes, big)

    def test_mov_refiner_never_worsens(self, ring):
        nodes = np.arange(0, 7)
        pre = conductance(ring, nodes)
        trace = apply_refiners(ring, nodes, (MOV(gamma_fraction=0.3),))
        assert trace.final_conductance <= pre + 1e-12
        assert 0 < trace.nodes.size < ring.num_nodes

    def test_empty_input_rejected(self, ring):
        with pytest.raises(PartitionError):
            apply_refiners(ring, [], ("mqi",))

    def test_refine_candidates_stays_aligned(self, whiskered):
        grid = DiffusionGrid(
            PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=5, seed=3
        )
        raw = cluster_ensemble_ncp(whiskered, grid)
        refined = refine_candidates(whiskered, raw, ("mqi",))
        assert len(refined) == len(raw)
        improved = 0
        for before, after in zip(raw, refined):
            assert after.method == before.method
            assert len(after.refinement) == 1
            assert after.conductance <= before.conductance + 1e-12
            if after.refined:
                improved += 1
                assert after.conductance < before.conductance - 1e-15
            else:
                # Unchanged candidates keep their exact sweep conductance.
                assert after.conductance == before.conductance
                assert np.array_equal(after.nodes, before.nodes)
        assert improved > 0


class TestPipeline:
    def test_pipeline_normalizes_grid_and_chain(self):
        pipe = Pipeline(PPR(alpha=(0.1,)), refiners=("mqi", "flow"))
        assert isinstance(pipe.grid, DiffusionGrid)
        assert pipe.key == "ppr"
        assert pipe.refiners == (MQI(), FlowImprove())
        assert pipe.refiner_tokens() == (
            "mqi(max_rounds=100)", "flow(dilation_radius=1, max_rounds=50)"
        )
        assert pipe.describe().startswith("ppr |> mqi(")

    def test_as_pipeline_idempotent_and_wrapping(self):
        pipe = Pipeline("hk", refiners=("mqi",))
        assert as_pipeline(pipe) is pipe
        wrapped = as_pipeline("hk")
        assert wrapped.refiners == ()
        assert wrapped.key == "hk"

    def test_unknown_refiner_in_pipeline_raises(self):
        with pytest.raises(UnknownRefinerError):
            Pipeline("ppr", refiners=("frobnicate",))

    def test_pipeline_through_cluster_ensemble(self, whiskered):
        grid = DiffusionGrid(
            PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=5, seed=3
        )
        raw = cluster_ensemble_ncp(whiskered, grid)
        piped = cluster_ensemble_ncp(
            whiskered, Pipeline(grid, refiners=("mqi",))
        )
        assert candidate_signature(piped) == candidate_signature(
            refine_candidates(whiskered, raw, ("mqi",))
        )

    def test_local_cluster_accepts_pipeline(self, whiskered):
        plain = local_cluster(whiskered, [44], PPR(alpha=0.1), epsilon=1e-4)
        piped = local_cluster(
            whiskered, [44],
            Pipeline(PPR(alpha=0.1), refiners=("mqi",)), epsilon=1e-4,
        )
        direct = local_cluster(
            whiskered, [44], PPR(alpha=0.1), epsilon=1e-4, refiners=("mqi",)
        )
        assert piped.conductance <= plain.conductance + 1e-12
        assert len(piped.refinement) == 1
        assert piped.conductance == direct.conductance
        assert np.array_equal(piped.nodes, direct.nodes)
        assert plain.refinement == ()

    def test_local_cluster_pipeline_plus_refiners_kwarg_raises(self, ring):
        with pytest.raises(InvalidParameterError, match="full chain"):
            local_cluster(
                ring, [0], Pipeline(PPR(alpha=0.1), refiners=("mqi",)),
                refiners=("flow",),
            )


class TestFlowEnsembleRefiners:
    def test_default_chain_is_metis_mqi(self, whiskered):
        candidates = flow_cluster_ensemble_ncp(whiskered, min_size=4, seed=0)
        refined = [c for c in candidates if c.refinement]
        assert refined, "default chain should improve some sides"
        for candidate in refined:
            assert candidate.refinement[0].refiner == "mqi(max_rounds=100)"
            assert candidate.refinement[0].changed
            assert candidate.conductance < (
                candidate.refinement[0].pre_conductance
            )

    def test_empty_chain_is_raw_bisection(self, whiskered):
        raw = flow_cluster_ensemble_ncp(
            whiskered, min_size=4, seed=0, refiners=()
        )
        assert all(c.refinement == () for c in raw)
        withmqi = flow_cluster_ensemble_ncp(whiskered, min_size=4, seed=0)
        assert len(withmqi) > len(raw)

    def test_max_refine_size_limits_refinement(self, whiskered):
        capped = flow_cluster_ensemble_ncp(
            whiskered, min_size=4, seed=0, max_refine_size=6
        )
        # Every refined candidate's raw predecessor has size <= 6: the
        # raw side precedes its refinement in the candidate list.
        previous = None
        for candidate in capped:
            if candidate.refinement:
                assert previous is not None and previous.size <= 6
            previous = candidate

    def test_chained_refiners_run_in_order(self, whiskered):
        chain = (MQI(max_rounds=5), FlowImprove(dilation_radius=1))
        candidates = flow_cluster_ensemble_ncp(
            whiskered, min_size=4, seed=0, refiners=chain
        )
        refined = [c for c in candidates if c.refinement]
        assert refined
        for candidate in refined:
            tokens = [step.refiner for step in candidate.refinement]
            assert tokens == [chain[0].token(), chain[1].token()]


class TestRunnerRefinement:
    GRID = None  # built lazily: whiskered fixture is function-scoped

    def _pipeline(self):
        return Pipeline(
            DiffusionGrid(
                PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=6, seed=0
            ),
            refiners=("mqi",),
        )

    def test_workers_do_not_change_refined_ensemble(self, whiskered):
        serial = run_ncp_ensemble(whiskered, self._pipeline(), num_workers=0)
        pooled = run_ncp_ensemble(whiskered, self._pipeline(), num_workers=2)
        assert candidate_signature(serial.candidates) == (
            candidate_signature(pooled.candidates)
        )
        assert serial.refiners == (MQI(),)

    def test_runner_matches_serial_generator(self, whiskered):
        run = run_ncp_ensemble(whiskered, self._pipeline())
        serial = cluster_ensemble_ncp(whiskered, self._pipeline())
        assert candidate_signature(run.candidates) == (
            candidate_signature(serial)
        )

    def test_cache_round_trips_provenance(self, whiskered, tmp_path):
        first = run_ncp_ensemble(
            whiskered, self._pipeline(), cache_dir=tmp_path
        )
        second = run_ncp_ensemble(
            whiskered, self._pipeline(), cache_dir=tmp_path
        )
        assert second.cache_hits == second.num_chunks > 0
        assert candidate_signature(first.candidates) == (
            candidate_signature(second.candidates)
        )
        # RefinementStep tuples survive the npz round trip exactly.
        assert any(c.refinement for c in second.candidates)

    def test_refined_and_raw_runs_never_alias(self, whiskered, tmp_path):
        pipeline = self._pipeline()
        refined = run_ncp_ensemble(whiskered, pipeline, cache_dir=tmp_path)
        raw = run_ncp_ensemble(whiskered, pipeline.grid, cache_dir=tmp_path)
        assert raw.cache_hits == 0
        other_chain = Pipeline(pipeline.grid, refiners=("mqi", "flow"))
        other = run_ncp_ensemble(whiskered, other_chain, cache_dir=tmp_path)
        assert other.cache_hits == 0
        assert refined.cache_hits == 0  # first writer

    def test_plan_chunks_stamps_refiners(self):
        chunks = plan_chunks(
            "ppr", [1, 2, 3], (("alphas", (0.1,)),), seeds_per_chunk=2,
            refiners=("mqi",),
        )
        assert all(chunk.refiners == (MQI(),) for chunk in chunks)
        assert chunks[0].refiner_tokens() == ("mqi(max_rounds=100)",)

    def test_manifest_records_resolved_chain(self, whiskered):
        run = run_ncp_ensemble(whiskered, self._pipeline())
        manifest = run.manifest()
        assert manifest["refiners"] == [
            {
                "name": "mqi",
                "params": {"max_rounds": 100},
                "token": "mqi(max_rounds=100)",
            }
        ]
        raw = run_ncp_ensemble(whiskered, self._pipeline().grid)
        assert raw.manifest()["refiners"] == []


class TestSpecStrings:
    def test_bare_names_and_aliases(self):
        assert parse_refiner_chain("mqi") == (MQI(),)
        assert parse_refiner_chain("metis_mqi,flow_improve") == (
            MQI(), FlowImprove()
        )

    def test_field_aliases_and_values(self):
        chain = parse_refiner_chain("mqi:rounds=5,flow:radius=2,rounds=9")
        assert chain == (
            MQI(max_rounds=5),
            FlowImprove(dilation_radius=2, max_rounds=9),
        )
        assert parse_refiner_chain("mov:gamma=0.25") == (
            MOV(gamma_fraction=0.25),
        )

    def test_errors(self):
        with pytest.raises(UnknownRefinerError):
            parse_refiner_chain("frobnicate")
        with pytest.raises(InvalidParameterError, match="unknown parameter"):
            parse_refiner_chain("mqi:frob=1")
        with pytest.raises(InvalidParameterError):
            parse_refiner_chain("rounds=1")  # param before any name
        with pytest.raises(InvalidParameterError):
            parse_refiner_chain("")


class TestCLI:
    NCP_ARGS = ("ncp", "--graph", "whiskered", "--dynamics",
                "ppr:alpha=0.1,eps=1e-3", "--num-seeds", "4", "--seed", "0",
                "--refine", "mqi,flow:radius=2")

    def test_refined_ncp_workers_byte_identical(self, tmp_path, capsys):
        for workers, name in (("0", "w0"), ("2", "w2")):
            assert main(list(self.NCP_ARGS) + [
                "--workers", workers, "--out", str(tmp_path / name)
            ]) == 0
        one = (tmp_path / "w0" / "candidates.csv").read_bytes()
        two = (tmp_path / "w2" / "candidates.csv").read_bytes()
        assert one == two and len(one) > 0
        manifest = load_manifest(tmp_path / "w0")
        assert manifest["arguments"]["refine"] == "mqi,flow:radius=2"
        assert "--refine" in manifest["replay_argv"]
        tokens = [r["token"] for r in manifest["runs"][0]["refiners"]]
        assert tokens == [
            "mqi(max_rounds=100)", "flow(dilation_radius=2, max_rounds=50)"
        ]

    def test_refined_manifest_replay(self, tmp_path, capsys):
        first = tmp_path / "first"
        assert main(list(self.NCP_ARGS) + ["--out", str(first)]) == 0
        manifest = load_manifest(first)
        replay = tmp_path / "replay"
        assert main(manifest["replay_argv"] + [
            "--workers", "2", "--out", str(replay)
        ]) == 0
        assert (first / "candidates.csv").read_bytes() == (
            (replay / "candidates.csv").read_bytes()
        )

    def test_cluster_refine_records_provenance(self, tmp_path, capsys):
        out = tmp_path / "cluster"
        assert main([
            "cluster", "--graph", "whiskered", "--seeds", "44",
            "--dynamics", "ppr:alpha=0.1,eps=1e-4", "--refine", "mqi",
            "--out", str(out),
        ]) == 0
        manifest = load_manifest(out)
        record = manifest["result"]
        assert record["refiners"] == ["mqi(max_rounds=100)"]
        assert len(record["refinement"]) == 1
        step = record["refinement"][0]
        assert step["post_conductance"] <= step["pre_conductance"] + 1e-12

    def test_unknown_refiner_exits_2(self, capsys):
        assert main([
            "ncp", "--graph", "barbell", "--dynamics", "ppr",
            "--refine", "nope", "--out", "unused",
        ]) == 2
        assert "unknown refiner" in capsys.readouterr().err


class TestMQIConvergence:
    def test_converged_fixed_point(self):
        from repro.graph.generators import lollipop_graph

        result = mqi(lollipop_graph(12, 24), list(range(10, 36)))
        assert result.converged is True

    def test_exhaustion_warns_and_reports(self):
        from repro.graph.generators import lollipop_graph

        graph = lollipop_graph(10, 20)
        with pytest.warns(RuntimeWarning, match="exhausted max_rounds"):
            capped = mqi(graph, list(range(8, 30)), max_rounds=1)
        assert capped.converged is False
        assert capped.rounds == 1

    def test_flow_improve_propagates_convergence(self, whiskered):
        result = flow_improve(
            whiskered, list(range(40, 43)), dilation_radius=3
        )
        assert result.converged is True
        assert result.rounds >= 0


class TestDilateVectorized:
    @pytest.mark.parametrize("radius", [0, 1, 2, 5])
    def test_parity_with_scalar_oracle(self, whiskered, radius):
        for start in ([0], [40, 41], list(range(10))):
            fast = dilate(whiskered, start, radius)
            slow = dilate(
                whiskered, start, radius, backend="scalar"
            )
            assert np.array_equal(fast, slow)

    def test_parity_on_reference_graph(self):
        graph = load_graph("atp")
        rng = np.random.default_rng(0)
        for _ in range(5):
            start = rng.choice(graph.num_nodes, size=8, replace=False)
            for radius in (1, 2, 3):
                assert np.array_equal(
                    dilate(graph, start, radius),
                    dilate(graph, start, radius, backend="scalar"),
                )

    def test_unknown_implementation_rejected(self, ring):
        with pytest.raises(InvalidParameterError):
            dilate(ring, [0], 1, backend="gpu")


class TestMOVAndCertificateCoverage:
    """Satellite: the previously untested kappa_for_gamma and
    mqi_certificate paths."""

    def test_kappa_curve_shape(self, ring):
        rows = kappa_for_gamma(ring, [0, 1], [-100.0, -1.0, 0.01])
        assert len(rows) == 3
        for gamma, correlation, rayleigh in rows:
            assert 0.0 <= correlation <= 1.0 + 1e-9
            assert rayleigh >= -1e-9
        # Locality knob: very negative gamma hugs the seed (high kappa),
        # gamma near lambda2 decorrelates toward the global solution.
        correlations = [r[1] for r in rows]
        assert correlations[0] >= correlations[-1] - 1e-9
        assert correlations[0] > 0.5

    def test_kappa_rows_echo_requested_gammas(self, ring):
        gammas = [-5.0, 0.01]
        rows = kappa_for_gamma(ring, [0], gammas)
        assert [r[0] for r in rows] == gammas

    def test_kappa_rejects_nonfinite_gamma(self, ring):
        with pytest.raises(InvalidParameterError):
            kappa_for_gamma(ring, [0], [float("nan")])

    def test_certificate_holds_at_fixed_point(self, ring):
        fixed = mqi(ring, list(range(10))).nodes
        base, best_random = mqi_certificate(ring, fixed, seed=7)
        assert base == pytest.approx(conductance(ring, fixed))
        assert base <= best_random + 1e-12

    def test_certificate_is_seed_deterministic(self, ring):
        fixed = mqi(ring, list(range(10))).nodes
        a = mqi_certificate(ring, fixed, trials=50, seed=11)
        b = mqi_certificate(ring, fixed, trials=50, seed=11)
        assert a == b

    def test_certificate_can_beat_unimproved_set(self, whiskered):
        # On a set that is NOT an MQI fixed point, random subsets can win
        # — the certificate is an oracle, not a tautology.
        loose = np.arange(30, 50)
        base, best_random = mqi_certificate(
            whiskered, loose, trials=400, seed=3
        )
        improved = mqi(whiskered, loose)
        if improved.conductance < base - 1e-12:
            assert best_random < base + 1e-12


class TestExtensionPoint:
    """A newly registered refiner flows through every consumer untouched."""

    def test_toy_refiner_everywhere(self, whiskered):
        @dataclass(frozen=True)
        class Shave(MQI):
            """Toy refiner: plain MQI under its own registry identity."""

            name: ClassVar[str] = "shave"

        kind = register_refiner(RefinerKind(
            name="Shave",
            key="shave",
            description="toy extension refiner (MQI in a trench coat)",
            aliases=("shaver",),
            spec_type=Shave,
            field_aliases=(("rounds", "max_rounds"),),
        ))
        try:
            assert get_refiner("shaver") is kind
            chain = parse_refiner_chain("shave:rounds=7")
            assert chain == (Shave(max_rounds=7),)
            candidates = flow_cluster_ensemble_ncp(
                whiskered, min_size=4, seed=0, refiners=("shave",)
            )
            assert any(
                c.refinement
                and c.refinement[0].refiner == "shave(max_rounds=100)"
                for c in candidates
            )
            run = run_ncp_ensemble(
                whiskered,
                Pipeline(
                    DiffusionGrid(
                        PPR(alpha=(0.1,)), epsilons=(1e-3,), num_seeds=4,
                        seed=0,
                    ),
                    refiners=("shave",),
                ),
            )
            assert run.refiners == (Shave(),)
        finally:
            unregister_refiner("shave")
        with pytest.raises(UnknownRefinerError):
            get_refiner("shave")


class TestCandidateDataclass:
    def test_refinement_defaults_empty(self):
        candidate = ClusterCandidate(
            nodes=np.array([1, 2]), conductance=0.5, method="flow"
        )
        assert candidate.refinement == ()
        assert candidate.refined is False

    def test_refined_property(self):
        step = RefinementStep(
            refiner="mqi(max_rounds=100)", pre_conductance=0.5,
            post_conductance=0.4, rounds=1, converged=True, changed=True,
        )
        candidate = ClusterCandidate(
            nodes=np.array([1]), conductance=0.4, method="flow",
            refinement=(step,),
        )
        assert candidate.refined is True
        assert dataclasses.replace(
            candidate, refinement=()
        ).refined is False
