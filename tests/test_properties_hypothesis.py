"""Property-based tests (hypothesis) for core invariants.

These cover the load-bearing algebraic identities: graph/CSR invariants,
Laplacian spectra, conductance symmetry, diffusion mass conservation, the
push invariant, max-flow/min-cut duality, and the regularized-SDP
equivalence — each over randomized instances rather than fixed examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edges
from repro.graph.matrices import (
    laplacian_quadratic_form,
    normalized_laplacian,
    trivial_eigenvector,
)

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def connected_graphs(draw, min_nodes=3, max_nodes=16):
    """Random connected weighted graphs: random tree + extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    edges = {}
    # Random spanning tree guarantees connectivity.
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges[(u, v)] = draw(
            st.floats(0.25, 4.0, allow_nan=False, allow_infinity=False)
        )
    extra = draw(st.integers(0, min(12, n * (n - 1) // 2 - (n - 1))))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in edges:
            edges[key] = draw(st.floats(0.25, 4.0, allow_nan=False))
    pairs = sorted(edges)
    return from_edges(n, pairs, [edges[p] for p in pairs])


@st.composite
def node_subsets(draw, graph):
    """A nonempty proper node subset of the given graph."""
    n = graph.num_nodes
    members = draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=n - 1,
                 unique=True)
    )
    if len(members) == n:
        members = members[:-1]
    return members


class TestGraphInvariants:
    @given(connected_graphs())
    def test_handshake_lemma(self, graph):
        total_weight = sum(w for *_e, w in graph.edges())
        assert graph.total_volume == pytest.approx(2 * total_weight)

    @given(connected_graphs())
    def test_adjacency_symmetric(self, graph):
        dense = graph.to_dense()
        assert np.allclose(dense, dense.T)

    @given(connected_graphs())
    def test_induced_subgraph_consistency(self, graph):
        k = max(1, graph.num_nodes // 2)
        chosen = list(range(k))
        sub, ids = graph.induced_subgraph(chosen)
        for i, u in enumerate(ids):
            for j, v in enumerate(ids):
                assert sub.edge_weight(i, j) == pytest.approx(
                    graph.edge_weight(int(u), int(v))
                )

    @given(connected_graphs(), st.integers(0, 10_000))
    def test_cut_weight_complement_symmetry(self, graph, salt):
        rng = np.random.default_rng(salt)
        k = int(rng.integers(1, graph.num_nodes))
        side = rng.choice(graph.num_nodes, size=k, replace=False)
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[side] = True
        assert graph.cut_weight(mask) == pytest.approx(
            graph.cut_weight(~mask)
        )

    @given(connected_graphs())
    def test_bfs_distances_triangle_inequality(self, graph):
        dist0 = graph.bfs_distances(0)
        for u, v, _w in graph.edges():
            # Adjacent nodes differ by at most 1 hop from any source.
            assert abs(dist0[u] - dist0[v]) <= 1


class TestSpectralInvariants:
    @given(connected_graphs())
    def test_normalized_laplacian_spectrum(self, graph):
        eigenvalues = np.linalg.eigvalsh(
            normalized_laplacian(graph).toarray()
        )
        assert eigenvalues.min() >= -1e-9
        assert eigenvalues.max() <= 2.0 + 1e-9
        assert abs(eigenvalues[0]) < 1e-9  # trivial eigenvalue

    @given(connected_graphs())
    def test_connected_iff_lambda2_positive(self, graph):
        eigenvalues = np.linalg.eigvalsh(
            normalized_laplacian(graph).toarray()
        )
        assert eigenvalues[1] > 1e-12

    @given(connected_graphs(), st.integers(0, 10_000))
    def test_quadratic_form_nonnegative(self, graph, salt):
        rng = np.random.default_rng(salt)
        x = rng.standard_normal(graph.num_nodes)
        assert laplacian_quadratic_form(graph, x) >= -1e-12

    @given(connected_graphs())
    def test_trivial_eigenvector_in_kernel(self, graph):
        L = normalized_laplacian(graph)
        v1 = trivial_eigenvector(graph)
        assert np.abs(L @ v1).max() < 1e-10


class TestConductanceInvariants:
    @given(connected_graphs(), st.integers(0, 10_000))
    def test_conductance_in_unit_interval(self, graph, salt):
        from repro.partition.metrics import conductance

        rng = np.random.default_rng(salt)
        k = int(rng.integers(1, graph.num_nodes))
        side = rng.choice(graph.num_nodes, size=k, replace=False)
        phi = conductance(graph, side)
        assert 0.0 <= phi <= 1.0 + 1e-9

    @given(connected_graphs(), st.integers(0, 10_000))
    def test_sweep_cut_at_most_direct(self, graph, salt):
        # The sweep's best prefix can't be worse than any specific prefix.
        from repro.partition.metrics import conductance
        from repro.partition.sweep import sweep_cut

        rng = np.random.default_rng(salt)
        scores = rng.random(graph.num_nodes)
        result = sweep_cut(graph, scores, degree_normalize=False)
        k = int(rng.integers(1, graph.num_nodes))
        prefix = result.order[:k]
        assert result.conductance <= conductance(graph, prefix) + 1e-9

    @given(connected_graphs())
    def test_cheeger_inequality(self, graph):
        from repro.linalg.fiedler import fiedler_value
        from repro.partition.spectral import spectral_cut

        lam2 = fiedler_value(graph, method="exact")
        result = spectral_cut(graph, method="exact")
        assert lam2 / 2 - 1e-9 <= result.conductance
        assert result.conductance <= np.sqrt(2 * lam2) + 1e-9


@st.composite
def arbitrary_graphs(draw, max_nodes=14):
    """Graphs that need not be connected — may have isolated nodes."""
    n = draw(st.integers(1, max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(st.lists(
        st.sampled_from(possible), max_size=min(20, len(possible)),
        unique=True,
    )) if possible else []
    weights = [
        draw(st.floats(0.25, 8.0, allow_nan=False, allow_infinity=False))
        for _ in chosen
    ]
    # Extra tail nodes beyond every edge endpoint: isolated by design.
    extra = draw(st.integers(0, 3))
    return from_edges(n + extra, sorted(chosen),
                      [w for _, w in sorted(zip(chosen, weights))])


class TestSerializationRoundTrips:
    """Every storage format is a faithful bijection on graphs."""

    @given(arbitrary_graphs())
    def test_edge_list_roundtrip(self, tmp_path_factory, graph):
        from repro.graph.io import read_edge_list, write_edge_list

        path = tmp_path_factory.mktemp("rt") / "g.tsv"
        write_edge_list(graph, path)
        rebuilt = read_edge_list(path, num_nodes=graph.num_nodes)
        assert rebuilt == graph

    @given(arbitrary_graphs())
    def test_edge_list_unweighted_structure_roundtrip(
        self, tmp_path_factory, graph
    ):
        from repro.graph.build import from_edges as rebuild
        from repro.graph.io import read_edge_list, write_edge_list

        path = tmp_path_factory.mktemp("rt") / "g.tsv"
        write_edge_list(graph, path, write_weights=False)
        rebuilt = read_edge_list(path, num_nodes=graph.num_nodes)
        us, vs, _ = graph.edge_array()
        expected = rebuild(
            graph.num_nodes, np.stack([us, vs], axis=1)
        )
        assert rebuilt == expected

    @given(arbitrary_graphs())
    def test_json_roundtrip(self, graph):
        from repro.graph.io import from_json_document, to_json_document

        assert from_json_document(to_json_document(graph)) == graph

    @given(arbitrary_graphs())
    def test_binary_roundtrip(self, tmp_path_factory, graph):
        from repro.graph.storage import read_binary, write_binary

        path = tmp_path_factory.mktemp("rt") / "g.reprograph"
        write_binary(graph, path)
        # mmap=False: hypothesis reuses tmp dirs aggressively; a fully
        # materialized read keeps no file handle behind.
        rebuilt = read_binary(path, mmap=False)
        assert rebuilt == graph

    @given(arbitrary_graphs())
    def test_binary_preserves_fingerprint(self, tmp_path_factory, graph):
        from repro.graph.storage import read_binary, write_binary
        from repro.ncp.runner import graph_fingerprint

        path = tmp_path_factory.mktemp("rt") / "g.reprograph"
        write_binary(graph, path)
        assert graph_fingerprint(read_binary(path)) == (
            graph_fingerprint(graph)
        )

    @given(arbitrary_graphs(), st.integers(0, 5))
    def test_num_nodes_override_roundtrip(
        self, tmp_path_factory, graph, padding
    ):
        from repro.graph.io import read_edge_list, write_edge_list

        path = tmp_path_factory.mktemp("rt") / "g.tsv"
        write_edge_list(graph, path)
        n = graph.num_nodes + padding
        rebuilt = read_edge_list(path, num_nodes=n)
        assert rebuilt.num_nodes == n
        assert rebuilt.num_edges == graph.num_edges


class TestDiffusionInvariants:
    @given(connected_graphs(), st.floats(0.05, 0.95),
           st.integers(0, 10_000))
    def test_pagerank_is_distribution(self, graph, gamma, salt):
        from repro.diffusion.pagerank import pagerank_exact
        from repro.diffusion.seeds import indicator_seed

        rng = np.random.default_rng(salt)
        seed_node = int(rng.integers(graph.num_nodes))
        pr = pagerank_exact(graph, gamma, indicator_seed(graph, [seed_node]))
        assert pr.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.all(pr >= -1e-10)

    @given(connected_graphs(), st.floats(0.1, 5.0))
    def test_heat_kernel_mass_conserved(self, graph, t):
        from repro.diffusion.heat_kernel import heat_kernel_vector
        from repro.diffusion.seeds import indicator_seed

        s = indicator_seed(graph, [0])
        h = heat_kernel_vector(graph, s, t, kind="random_walk")
        assert h.sum() == pytest.approx(1.0, abs=1e-8)

    @given(connected_graphs(), st.floats(0.05, 0.6),
           st.sampled_from([1e-2, 1e-3, 1e-4]))
    def test_push_invariant_and_error(self, graph, alpha, epsilon):
        from repro.diffusion.pagerank import lazy_pagerank_exact
        from repro.diffusion.push import approximate_ppr_push
        from repro.diffusion.seeds import indicator_seed

        s = indicator_seed(graph, [0])
        result = approximate_ppr_push(
            graph, s, alpha=alpha, epsilon=epsilon
        )
        exact = lazy_pagerank_exact(graph, alpha, s)
        gap = np.abs(result.approximation - exact)
        assert np.all(gap <= epsilon * graph.degrees + 1e-9)
        assert np.all(result.residual <= epsilon * graph.degrees + 1e-12)


class TestEngineInvariants:
    """The batched frontier engine obeys the same Section 3.3 contracts
    as the scalar push: exact push invariant at exit, the eps*d entrywise
    guarantee, and the O(1/(eps alpha)) work-accounting bound."""

    @given(connected_graphs(), st.floats(0.05, 0.6),
           st.sampled_from([1e-2, 1e-3, 1e-4]))
    def test_engine_push_invariant_at_exit(self, graph, alpha, epsilon):
        # p + pr_alpha(r) = pr_alpha(s): simultaneous pushes are linear,
        # so the invariant must hold exactly (to solver tolerance).
        from repro.diffusion.engine import ppr_push_frontier
        from repro.diffusion.pagerank import lazy_pagerank_exact
        from repro.diffusion.push import push_invariant_residual
        from repro.diffusion.seeds import indicator_seed

        s = indicator_seed(graph, [0])
        result = ppr_push_frontier(graph, s, alpha=alpha, epsilon=epsilon)
        assert push_invariant_residual(graph, result, s) < 1e-8
        exact = lazy_pagerank_exact(graph, alpha, s)
        gap = np.abs(result.approximation - exact)
        assert np.all(gap <= epsilon * graph.degrees + 1e-9)
        assert np.all(result.residual <= epsilon * graph.degrees + 1e-12)
        assert np.all(result.residual >= 0)

    @given(connected_graphs(), st.floats(0.05, 0.6),
           st.sampled_from([1e-2, 1e-3]))
    def test_engine_work_bound(self, graph, alpha, epsilon):
        # Every push drains alpha * r_u >= alpha * eps * d_u of residual
        # mass, so eps * alpha * sum_pushes d_u <= ||s||_1 — the paper's
        # output-local work bound, independent of n.
        from repro.diffusion.engine import batch_ppr_push
        from repro.diffusion.seeds import indicator_seed

        s = indicator_seed(graph, [0])
        result = batch_ppr_push(
            graph, [s], alphas=(alpha,), epsilons=(epsilon,)
        )
        assert epsilon * alpha * result.pushed_volume[0] <= s.sum() + 1e-9
        # Total mass is conserved between approximation and residual.
        total = result.approximation[:, 0].sum() + \
            result.residual[:, 0].sum()
        assert total == pytest.approx(s.sum(), abs=1e-9)

    @given(connected_graphs(), st.floats(0.05, 0.6),
           st.sampled_from([1e-2, 1e-3]))
    def test_engine_scalar_parity(self, graph, alpha, epsilon):
        from repro.diffusion.engine import ppr_push_frontier
        from repro.diffusion.push import approximate_ppr_push
        from repro.diffusion.seeds import indicator_seed

        s = indicator_seed(graph, [0])
        scalar = approximate_ppr_push(graph, s, alpha=alpha, epsilon=epsilon)
        frontier = ppr_push_frontier(graph, s, alpha=alpha, epsilon=epsilon)
        gap = np.abs(scalar.approximation - frontier.approximation)
        assert np.all(gap <= 2 * epsilon * graph.degrees + 1e-9)


class TestFlowInvariants:
    @given(st.integers(0, 10_000))
    def test_maxflow_mincut_duality_random(self, salt):
        from repro.partition.maxflow import FlowNetwork

        rng = np.random.default_rng(salt)
        n = int(rng.integers(4, 10))
        net = FlowNetwork(n)
        for _ in range(int(rng.integers(5, 25))):
            u, v = rng.integers(n, size=2)
            if u != v:
                net.add_edge(int(u), int(v), float(rng.integers(1, 8)))
        result = net.max_flow(0, n - 1)
        side = result.min_cut_source_side()
        assert 0 in side and (n - 1) not in side
        assert result.cut_capacity(side) == pytest.approx(result.value)

    @given(connected_graphs(min_nodes=5), st.integers(0, 10_000))
    def test_mqi_never_worsens(self, graph, salt):
        from repro.partition.metrics import conductance
        from repro.partition.mqi import mqi

        rng = np.random.default_rng(salt)
        k = int(rng.integers(2, graph.num_nodes - 1))
        side = rng.choice(graph.num_nodes, size=k, replace=False)
        if graph.degrees[side].sum() > graph.total_volume / 2:
            mask = np.zeros(graph.num_nodes, dtype=bool)
            mask[side] = True
            side = np.flatnonzero(~mask)
        if side.size == 0 or side.size == graph.num_nodes:
            return
        if graph.degrees[side].sum() > graph.total_volume / 2:
            return
        result = mqi(graph, side)
        assert result.conductance <= conductance(graph, side) + 1e-9


class TestRefinerInvariants:
    """Registry-wide refiner contracts: every registered refiner maps a
    nonempty proper subset to a nonempty proper subset and never
    increases conductance — on arbitrary inputs, including ones that
    violate a refiner's own preconditions (those pass through
    unchanged)."""

    @given(connected_graphs(min_nodes=4), st.integers(0, 10_000))
    def test_every_registered_refiner_contract(self, graph, salt):
        from repro.partition.metrics import conductance
        from repro.refine import apply_refiners, registered_refiners

        rng = np.random.default_rng(salt)
        k = int(rng.integers(1, graph.num_nodes))
        side = np.sort(rng.choice(graph.num_nodes, size=k, replace=False))
        if side.size == graph.num_nodes:
            side = side[:-1]
        phi = conductance(graph, side)
        for key, kind in registered_refiners().items():
            trace = apply_refiners(graph, side, (kind.default_spec(),))
            assert trace.final_conductance <= phi + 1e-9, key
            assert trace.final_conductance == pytest.approx(
                conductance(graph, trace.nodes)
            ), key
            assert 0 < trace.nodes.size < graph.num_nodes, key
            assert np.array_equal(trace.nodes, np.unique(trace.nodes)), key

    @given(connected_graphs(min_nodes=4), st.integers(0, 10_000))
    def test_chain_is_monotone_stage_by_stage(self, graph, salt):
        from repro.refine import apply_refiners

        rng = np.random.default_rng(salt)
        k = int(rng.integers(1, max(2, graph.num_nodes // 2)))
        side = rng.choice(graph.num_nodes, size=k, replace=False)
        trace = apply_refiners(graph, side, ("mqi", "flow"))
        previous = trace.initial_conductance
        for step in trace.steps:
            assert step.pre_conductance == pytest.approx(previous)
            assert step.post_conductance <= step.pre_conductance + 1e-12
            if not step.changed:
                assert step.post_conductance == step.pre_conductance
            previous = step.post_conductance


class TestRegularizationInvariants:
    @given(connected_graphs(min_nodes=4, max_nodes=12),
           st.floats(0.2, 8.0))
    def test_heat_kernel_equivalence_random_graphs(self, graph, t):
        from repro.regularization.equivalence import verify_heat_kernel

        report = verify_heat_kernel(graph, t)
        assert report.diffusion_vs_closed_form < 1e-8

    @given(connected_graphs(min_nodes=4, max_nodes=12),
           st.floats(0.05, 0.9))
    def test_pagerank_equivalence_random_graphs(self, graph, gamma):
        from repro.regularization.equivalence import verify_pagerank

        report = verify_pagerank(graph, gamma)
        assert report.diffusion_vs_closed_form < 1e-7

    @given(connected_graphs(min_nodes=4, max_nodes=12),
           st.floats(0.5, 0.95), st.integers(1, 8))
    def test_lazy_walk_equivalence_random_graphs(self, graph, alpha, k):
        from repro.regularization.equivalence import verify_lazy_walk

        report = verify_lazy_walk(graph, alpha, k)
        assert report.diffusion_vs_closed_form < 1e-7

    @given(st.integers(0, 10_000), st.integers(2, 10))
    def test_simplex_projection_is_projection(self, salt, d):
        from repro.regularization.solver import simplex_projection

        rng = np.random.default_rng(salt)
        v = rng.standard_normal(d) * 5
        p = simplex_projection(v)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)
        # Idempotent.
        assert np.allclose(simplex_projection(p), p, atol=1e-12)


class TestMultiDynamicsInvariants:
    """Invariants of the truncated walk and the batched heat-kernel
    engine: rounding can only move mass into the dropped-mass ledger, and
    the batched Taylor accumulation stays inside the scalar error
    budget."""

    @given(connected_graphs(), st.sampled_from([1e-2, 1e-3, 1e-4]),
           st.floats(0.3, 0.7), st.integers(0, 12),
           st.sampled_from(["numpy", "scalar"]))
    def test_truncated_walk_mass_conservation(self, graph, epsilon, alpha,
                                              num_steps, backend):
        # Every unit of seed mass is either still in the charge vector or
        # was explicitly dropped by rounding: final + dropped ≈ 1.
        from repro.diffusion.seeds import indicator_seed
        from repro.diffusion.truncated_walk import truncated_lazy_walk

        s = indicator_seed(graph, [0])
        result = truncated_lazy_walk(
            graph, s, num_steps, epsilon=epsilon, alpha=alpha,
            keep_trajectory=False, backend=backend,
        )
        assert result.final.sum() + result.dropped_mass == pytest.approx(
            1.0, abs=1e-9
        )
        assert result.dropped_mass >= -1e-15
        assert np.all(result.final >= 0)

    @given(connected_graphs(), st.sampled_from([1e-2, 1e-3]),
           st.floats(0.3, 0.7), st.integers(1, 10))
    def test_truncated_walk_implementations_agree(self, graph, epsilon,
                                                  alpha, num_steps):
        from repro.diffusion.seeds import indicator_seed
        from repro.diffusion.truncated_walk import truncated_lazy_walk

        s = indicator_seed(graph, [0])
        scalar = truncated_lazy_walk(
            graph, s, num_steps, epsilon=epsilon, alpha=alpha,
            backend="scalar",
        )
        fast = truncated_lazy_walk(
            graph, s, num_steps, epsilon=epsilon, alpha=alpha,
            backend="numpy",
        )
        assert np.allclose(scalar.final, fast.final, atol=1e-12)
        assert scalar.support_sizes == fast.support_sizes
        assert scalar.dropped_mass == pytest.approx(
            fast.dropped_mass, abs=1e-12
        )

    @given(connected_graphs(), st.floats(0.2, 6.0),
           st.sampled_from([1e-2, 1e-3]))
    def test_batch_hk_error_within_budget(self, graph, t, epsilon):
        # Column ℓ1 error ≤ dropped rounding mass + Poisson tail — the
        # scalar heat_kernel_push bound, inherited per batched column.
        from repro.diffusion.engine import batch_hk_push
        from repro.diffusion.heat_kernel import heat_kernel_vector
        from repro.diffusion.seeds import indicator_seed

        s = indicator_seed(graph, [0])
        batch = batch_hk_push(graph, [s], ts=(t,), epsilons=(epsilon,))
        exact = heat_kernel_vector(graph, s, t, kind="random_walk")
        error = np.abs(batch.approximation[:, 0] - exact).sum()
        budget = batch.dropped_mass[0] + batch.tail_bound[0]
        assert error <= budget + 1e-7
