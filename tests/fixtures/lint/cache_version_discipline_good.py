"""Known-good fixture for the cache-version-discipline rule (R002)."""

import hashlib

import numpy as np

_CACHE_VERSION = 3


def _chunk_cache_key(fingerprint, chunk):
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}|{fingerprint}|{chunk}".encode())
    return digest.hexdigest()


def save_memo(path, arrays):
    np.savez_compressed(path, **arrays)
