"""Known-bad fixture for the no-stringly-dispatch rule (R001)."""

_REGISTRY = {}


def pick_kernel(backend, dynamics):
    if backend == "numba":          # stringly backend dispatch
        return "jit"
    if dynamics in ("ppr", "hk"):   # stringly dynamics membership
        return "diffusion"
    return _REGISTRY["numpy"]       # private registry dict access
