"""Known-good fixture for the determinism-hazards rule (R003)."""

import time

import numpy as np


def sample_seeds(graph, count, seed):
    rng = np.random.default_rng(seed)        # explicit seeded Generator
    picks = rng.choice(graph, count)
    elapsed = time.perf_counter()            # timing is not a result
    members = sorted({3, 1, 2})              # ordered materialization
    for node in sorted(set(picks)):          # ordered iteration
        members.append(node)
    present = 3 in {1, 2, 3}                 # membership, not iteration
    return picks, elapsed, members, present
