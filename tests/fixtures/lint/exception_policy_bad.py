"""Known-bad fixture for the exception-policy rule (R004)."""


def load(path, table):
    try:
        return table[path]
    except:                      # bare except
        pass
    try:
        return float(path)
    except Exception:            # broad catch that swallows
        return None


def lookup(table, key):
    if key not in table:
        raise KeyError(f"unknown key {key!r}")        # builtin raise
    if not table[key]:
        raise ValueError(f"empty entry for {key!r}")  # builtin raise
    return table[key]
