"""Known-good fixture for the numba-purity rule (R006)."""

import json
import math

import numpy as np


def njit(function=None, **options):
    """Stand-in decorator so the fixture parses without numba."""
    return function if function is not None else njit


@njit(cache=True)
def push_kernel(indptr, indices, values, epsilon):
    total = 0.0
    for k in range(indptr.shape[0] - 1):
        total += values[k] * math.sqrt(indices[k] + 1.0)
    if total < epsilon:
        raise ValueError("total below epsilon")   # plain message is fine
    return np.float64(total)


def python_wrapper(indptr, indices, values, epsilon):
    # Object-mode constructs live outside the kernel.
    report = {"total": push_kernel(indptr, indices, values, epsilon)}
    return json.dumps(report)
