"""Known-good fixture for the no-stringly-dispatch rule (R001)."""


def pick_kernel(backend, dynamics, get_backend, resolve_dynamics_name):
    resolved = get_backend(backend)
    if resolved is get_backend("numba"):
        return "jit"
    key = resolve_dynamics_name(dynamics)
    # Comparing to non-registry vocabulary is not dispatch.
    if key == "something-else":
        return None
    # Asserting a concrete registry name is a test, not dispatch.
    assert dynamics == "ppr"
    return resolved
