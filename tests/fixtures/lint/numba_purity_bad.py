"""Known-bad fixture for the numba-purity rule (R006)."""

import json

import numpy as np


def njit(function=None, **options):
    """Stand-in decorator so the fixture parses without numba."""
    return function if function is not None else njit


@njit(cache=True)
def push_kernel(indptr, indices, values, epsilon):
    lookup = {0: "zero", 1: 1.0}            # mixed-type reflected dict
    try:                                    # object-mode exception flow
        total = np.sum(values)
    except ValueError:
        total = 0.0
    if total < epsilon:
        raise ValueError(f"tiny total {total}")   # f-string in kernel
    json.dumps(lookup)                      # closure over a module
    return total
