"""Known-bad fixture for the shim-policy rule (R005)."""

import warnings


def warn_deprecated(old, new):
    # Direct DeprecationWarning without the "repro API deprecation"
    # prefix: invisible to the suite's warning-to-error promotion.
    warnings.warn(f"{old} is deprecated; use {new}", DeprecationWarning)


def old_entry_point(graph, engine, resolve_backend_name):
    # Warns before resolving: bad input emits the warning, then raises.
    warn_deprecated("old_entry_point(engine=...)", "backend=...")
    backend = resolve_backend_name(engine)
    return graph, backend
