"""Known-bad fixture for the executor-discipline rule (R007)."""

import concurrent.futures
from concurrent.futures import ProcessPoolExecutor


def fan_out(work, evaluate):
    with ProcessPoolExecutor(max_workers=4) as pool:  # direct construction
        return list(pool.map(evaluate, work))


def fan_out_dotted(work, evaluate):
    pool = concurrent.futures.ProcessPoolExecutor()   # dotted form too
    try:
        return list(pool.map(evaluate, work))
    finally:
        pool.shutdown()
