"""Known-bad fixture for the determinism-hazards rule (R003)."""

import random
import time

import numpy as np


def sample_seeds(graph, count):
    jitter = random.random()                 # stdlib global RNG
    picks = np.random.choice(graph, count)   # legacy numpy global RNG
    stamp = time.time()                      # wall clock in results
    members = list({3, 1, 2})                # unordered materialization
    for node in set(picks):                  # unordered iteration
        members.append(node)
    return jitter, stamp, members
