"""Known-good fixture for the shim-policy rule (R005)."""

import warnings


def warn_deprecated(old, new):
    # The prefixed form the suite's filterwarnings promotion matches.
    warnings.warn(
        f"repro API deprecation: {old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def old_entry_point(graph, engine, resolve_backend_name):
    # Resolve-then-warn: invalid input raises before any warning fires.
    backend = resolve_backend_name(engine)
    warn_deprecated("old_entry_point(engine=...)", "backend=...")
    return graph, backend
