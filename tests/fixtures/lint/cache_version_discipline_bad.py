"""Known-bad fixture for the cache-version-discipline rule (R002)."""

import hashlib

import numpy as np


def _chunk_cache_key(fingerprint, chunk):
    # Composes a cache key without citing any _CACHE_VERSION constant.
    digest = hashlib.sha256()
    digest.update(f"{fingerprint}|{chunk}".encode())
    return digest.hexdigest()


def save_memo(path, arrays):
    # Persists memo entries in a module with no _CACHE_VERSION at all.
    np.savez_compressed(path, **arrays)
