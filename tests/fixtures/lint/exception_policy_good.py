"""Known-good fixture for the exception-policy rule (R004)."""

from repro.exceptions import InvalidParameterError


class UnknownEntryError(InvalidParameterError, KeyError):
    """Dual-inheritance registry-style error."""


def load(path, table):
    try:
        return table[path]
    except KeyError:             # narrow catch
        return None
    except Exception:            # broad, but re-raises after handling
        table.clear()
        raise


def lookup(table, key):
    if key not in table:
        raise UnknownEntryError(f"unknown key {key!r}")
    return table[key]
