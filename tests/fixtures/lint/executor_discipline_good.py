"""Known-good fixture for the executor-discipline rule (R007)."""

from concurrent.futures import ThreadPoolExecutor

from repro.execution import build_executor, execute_chunks


def fan_out(graph, evaluate, chunks):
    # Pools are selected through the executor registry, so retry,
    # straggler re-dispatch, and resume apply uniformly.
    executor, _, _ = build_executor(
        "process", graph=graph, evaluate=evaluate, num_workers=4
    )
    return execute_chunks(executor, chunks)


def io_fan_out(urls, fetch):
    # Thread pools are not chunk execution; R007 only guards processes.
    with ThreadPoolExecutor(max_workers=4) as pool:
        return list(pool.map(fetch, urls))
