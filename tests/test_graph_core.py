"""Unit tests for the Graph data structure and builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyGraphError, GraphError
from repro.graph.build import (
    empty_graph,
    from_dense,
    from_edges,
    from_scipy_sparse,
    union_disjoint,
)
from repro.graph.graph import Graph


class TestFromEdges:
    def test_simple_triangle(self):
        g = from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.total_volume == 6.0

    def test_endpoint_order_is_irrelevant(self):
        a = from_edges(4, [(0, 1), (2, 1)])
        b = from_edges(4, [(1, 0), (1, 2)])
        assert a == b

    def test_duplicate_edges_sum_by_default(self):
        g = from_edges(2, [(0, 1), (1, 0)], [2.0, 3.0])
        assert g.edge_weight(0, 1) == 5.0
        assert g.num_edges == 1

    def test_duplicate_edges_max(self):
        g = from_edges(2, [(0, 1), (1, 0)], [2.0, 3.0], combine="max")
        assert g.edge_weight(0, 1) == 3.0

    def test_duplicate_edges_error(self):
        with pytest.raises(GraphError, match="duplicate"):
            from_edges(2, [(0, 1), (1, 0)], combine="error")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            from_edges(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError, match="lie in"):
            from_edges(2, [(0, 2)])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            from_edges(2, [(0, 1)], [-1.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            from_edges(2, [(0, 1)], [0.0])

    def test_non_integer_endpoints_rejected(self):
        with pytest.raises(GraphError, match="integer"):
            from_edges(3, np.array([[0.5, 1.0]]))

    def test_empty_edge_list(self):
        g = from_edges(4, [])
        assert g.num_nodes == 4
        assert g.num_edges == 0
        assert np.all(g.degrees == 0)

    def test_isolated_trailing_nodes_have_zero_degree(self):
        g = from_edges(5, [(0, 1)])
        assert g.degrees.tolist() == [1.0, 1.0, 0.0, 0.0, 0.0]


class TestGraphAccessors:
    def test_neighbors_sorted(self, barbell):
        for u in range(barbell.num_nodes):
            nbrs = barbell.neighbors(u)
            assert np.all(np.diff(nbrs) > 0)

    def test_degree_matches_incident_weights(self, weighted_triangle):
        g = weighted_triangle
        for u in range(3):
            assert g.degree(u) == pytest.approx(g.incident_weights(u).sum())

    def test_weighted_degrees(self, weighted_triangle):
        # edges: (0,1)=1, (1,2)=2, (0,2)=3
        assert weighted_triangle.degrees.tolist() == [4.0, 3.0, 5.0]

    def test_has_edge(self, small_path):
        assert small_path.has_edge(0, 1)
        assert small_path.has_edge(1, 0)
        assert not small_path.has_edge(0, 2)

    def test_edge_weight_absent_is_zero(self, small_path):
        assert small_path.edge_weight(0, 5) == 0.0

    def test_edges_iterator_each_edge_once(self, barbell):
        edges = list(barbell.edges())
        assert len(edges) == barbell.num_edges
        assert all(u < v for u, v, _ in edges)

    def test_edge_array_matches_iterator(self, ring):
        us, vs, ws = ring.edge_array()
        listed = {(u, v) for u, v, _ in ring.edges()}
        assert set(zip(us.tolist(), vs.tolist())) == listed

    def test_arrays_are_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.degrees[0] = 99.0
        with pytest.raises(ValueError):
            triangle.weights[0] = 99.0

    def test_repr_mentions_counts(self, triangle):
        assert "num_nodes=3" in repr(triangle)

    def test_equality_and_hash(self):
        a = from_edges(3, [(0, 1), (1, 2)])
        b = from_edges(3, [(1, 2), (0, 1)])
        c = from_edges(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestSetQuantities:
    def test_volume(self, barbell):
        left = list(range(8))
        # K_8 side: 7*8 internal degree + 1 bridge endpoint
        assert barbell.volume(left) == 7 * 8 + 1

    def test_cut_weight_bridge(self, barbell):
        assert barbell.cut_weight(list(range(8))) == 1.0

    def test_cut_weight_complement_symmetric(self, ring):
        side = list(range(12))
        mask = np.zeros(ring.num_nodes, dtype=bool)
        mask[side] = True
        assert ring.cut_weight(mask) == pytest.approx(ring.cut_weight(~mask))

    def test_edge_boundary_matches_cut_weight(self, lollipop):
        side = list(range(8))
        boundary = lollipop.edge_boundary(side)
        assert sum(w for *_e, w in boundary) == pytest.approx(
            lollipop.cut_weight(side)
        )

    def test_boolean_mask_accepted(self, triangle):
        mask = np.array([True, False, False])
        assert triangle.volume(mask) == 2.0

    def test_bad_mask_shape_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.volume(np.array([True, False]))


class TestTraversal:
    def test_bfs_distances_path(self, small_path):
        dist = small_path.bfs_distances(0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_bfs_max_distance(self, small_path):
        dist = small_path.bfs_distances(0, max_distance=2)
        assert dist.tolist() == [0, 1, 2, -1, -1, -1]

    def test_connected_components_two_pieces(self):
        g = from_edges(5, [(0, 1), (2, 3)])
        labels, count = g.connected_components()
        assert count == 3  # {0,1}, {2,3}, {4}
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])

    def test_is_connected(self, barbell):
        assert barbell.is_connected()
        assert not from_edges(3, [(0, 1)]).is_connected()
        assert not empty_graph(0).is_connected()

    def test_largest_component(self):
        g = from_edges(7, [(0, 1), (1, 2), (3, 4)])
        sub, ids = g.largest_component()
        assert sub.num_nodes == 3
        assert ids.tolist() == [0, 1, 2]

    def test_largest_component_empty_raises(self):
        with pytest.raises(EmptyGraphError):
            empty_graph(0).largest_component()


class TestInducedSubgraph:
    def test_preserves_edges_and_weights(self, weighted_triangle):
        sub, ids = weighted_triangle.induced_subgraph([0, 2])
        assert sub.num_nodes == 2
        assert sub.edge_weight(0, 1) == 3.0
        assert ids.tolist() == [0, 2]

    def test_empty_selection(self, triangle):
        sub, ids = triangle.induced_subgraph([])
        assert sub.num_nodes == 0
        assert ids.size == 0

    def test_full_selection_is_identity(self, ring):
        sub, ids = ring.induced_subgraph(range(ring.num_nodes))
        assert sub == ring

    def test_clique_from_barbell(self, barbell):
        sub, _ = barbell.induced_subgraph(range(8))
        assert sub.num_edges == 8 * 7 // 2


class TestConversions:
    def test_to_dense_symmetric(self, weighted_triangle):
        dense = weighted_triangle.to_dense()
        assert np.allclose(dense, dense.T)
        assert dense[0, 1] == 1.0 and dense[1, 2] == 2.0 and dense[0, 2] == 3.0

    def test_from_dense_roundtrip(self, weighted_triangle):
        rebuilt = from_dense(weighted_triangle.to_dense())
        assert rebuilt == weighted_triangle

    def test_from_dense_rejects_asymmetric(self):
        with pytest.raises(GraphError, match="symmetric"):
            from_dense([[0, 1], [0, 0]])

    def test_from_dense_rejects_diagonal(self):
        with pytest.raises(GraphError, match="diagonal"):
            from_dense([[1, 0], [0, 0]])

    def test_from_scipy_sparse_roundtrip(self, ring):
        from repro.graph.matrices import adjacency_matrix

        rebuilt = from_scipy_sparse(adjacency_matrix(ring))
        assert rebuilt == ring


class TestUnionDisjoint:
    def test_sizes_add(self, triangle, small_path):
        combined = union_disjoint(triangle, small_path)
        assert combined.num_nodes == 9
        assert combined.num_edges == triangle.num_edges + small_path.num_edges

    def test_bridge_edges(self, triangle, small_path):
        combined = union_disjoint(triangle, small_path, bridge_edges=[(0, 0)])
        assert combined.has_edge(0, 3)
        assert combined.is_connected()


class TestValidationOnConstruction:
    def test_rejects_asymmetric_csr(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        weights = np.array([1.0])
        with pytest.raises(GraphError, match="symmetric"):
            Graph(indptr, indices, weights)

    def test_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            Graph(np.array([1, 0]), np.array([]), np.array([]))

    def test_rejects_unsorted_adjacency(self):
        indptr = np.array([0, 2, 3, 4])
        indices = np.array([2, 1, 0, 0])
        weights = np.ones(4)
        with pytest.raises(GraphError, match="sorted"):
            Graph(indptr, indices, weights)
