"""Shared fixtures: small canonical graphs used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.graph.generators import (
    barbell_graph,
    cycle_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    ring_of_cliques,
    roach_graph,
)
from repro.graph.random_generators import (
    planted_partition_graph,
    random_regular_graph,
    whiskered_expander,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance-regression smoke benchmarks (write BENCH_*.json)",
    )


@pytest.fixture
def triangle():
    """The 3-cycle: smallest nontrivial connected graph."""
    return cycle_graph(3)


@pytest.fixture
def small_path():
    """Path on 6 nodes."""
    return path_graph(6)


@pytest.fixture
def barbell():
    """Two K_8 cliques joined by one edge."""
    return barbell_graph(8)


@pytest.fixture
def lollipop():
    """K_8 with a 12-node tail."""
    return lollipop_graph(8, 12)


@pytest.fixture
def ring():
    """Ring of 5 cliques of size 6."""
    return ring_of_cliques(5, 6)


@pytest.fixture
def grid():
    """8x8 grid."""
    return grid_graph(8, 8)


@pytest.fixture
def roach():
    """Guattery-Miller roach with body 6 and antennae 6."""
    return roach_graph(6, 6)


@pytest.fixture
def expander():
    """Random 4-regular graph on 60 nodes (fixed seed)."""
    return random_regular_graph(60, 4, seed=7)


@pytest.fixture
def whiskered():
    """Expander core with whiskers (fixed seed)."""
    return whiskered_expander(40, 4, 6, 5, seed=11)


@pytest.fixture
def planted():
    """Planted partition: 4 blocks of 16, dense inside."""
    return planted_partition_graph(4, 16, 0.5, 0.02, seed=5)


@pytest.fixture
def weighted_triangle():
    """Triangle with weights 1, 2, 3."""
    return from_edges(3, [(0, 1), (1, 2), (0, 2)], [1.0, 2.0, 3.0])


@pytest.fixture
def rng():
    return np.random.default_rng(2026)
