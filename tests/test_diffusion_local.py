"""Tests for strongly local diffusion algorithms (Section 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.hk_push import (
    heat_kernel_push,
    poisson_tail,
    terms_for_tail,
)
from repro.diffusion.pagerank import lazy_pagerank_exact
from repro.diffusion.push import (
    approximate_ppr_push,
    push_invariant_residual,
)
from repro.diffusion.seeds import indicator_seed
from repro.diffusion.truncated_walk import (
    truncated_lazy_walk,
    untruncated_lazy_walk,
)
from repro.exceptions import InvalidParameterError
from repro.graph.random_generators import whiskered_expander


class TestACLPush:
    def test_entrywise_error_bound(self, ring):
        s = indicator_seed(ring, [0])
        alpha, epsilon = 0.1, 1e-4
        result = approximate_ppr_push(ring, s, alpha=alpha, epsilon=epsilon)
        exact = lazy_pagerank_exact(ring, alpha, s)
        gap = np.abs(result.approximation - exact)
        assert np.all(gap <= epsilon * ring.degrees + 1e-12)

    def test_approximation_underestimates(self, ring):
        s = indicator_seed(ring, [0])
        result = approximate_ppr_push(ring, s, alpha=0.1, epsilon=1e-4)
        exact = lazy_pagerank_exact(ring, 0.1, s)
        assert np.all(result.approximation <= exact + 1e-12)

    def test_push_invariant_exact(self, ring):
        s = indicator_seed(ring, [3])
        result = approximate_ppr_push(ring, s, alpha=0.2, epsilon=1e-3)
        assert push_invariant_residual(ring, result, s) < 1e-10

    def test_residual_below_threshold(self, whiskered):
        s = indicator_seed(whiskered, [5])
        result = approximate_ppr_push(whiskered, s, alpha=0.1, epsilon=1e-4)
        assert np.all(result.residual < result.epsilon * whiskered.degrees)

    def test_work_bound(self, ring):
        # Total pushed mass bound implies num_pushes <= 1/(eps*alpha).
        s = indicator_seed(ring, [0])
        alpha, epsilon = 0.15, 1e-3
        result = approximate_ppr_push(ring, s, alpha=alpha, epsilon=epsilon)
        assert result.num_pushes <= 1.0 / (epsilon * alpha) + 1

    def test_strong_locality_support_independent_of_n(self):
        # Same whisker seed, growing expander core: the touched set should
        # not grow proportionally with n.
        supports = []
        for core in (64, 128, 256):
            g = whiskered_expander(core, 4, 4, 6, seed=1)
            seed_node = core  # first whisker node
            s = indicator_seed(g, [seed_node])
            result = approximate_ppr_push(g, s, alpha=0.2, epsilon=1e-3)
            supports.append(result.touched.size)
        assert max(supports) <= 3 * min(supports)
        assert supports[-1] < 256  # far below the large graph's n

    def test_smaller_epsilon_more_work(self, ring):
        s = indicator_seed(ring, [0])
        coarse = approximate_ppr_push(ring, s, alpha=0.1, epsilon=1e-2)
        fine = approximate_ppr_push(ring, s, alpha=0.1, epsilon=1e-5)
        assert fine.work >= coarse.work
        assert fine.num_pushes >= coarse.num_pushes

    def test_negative_seed_rejected(self, ring):
        s = np.zeros(ring.num_nodes)
        s[0] = -1.0
        with pytest.raises(InvalidParameterError):
            approximate_ppr_push(ring, s)


class TestTruncatedWalk:
    def test_error_bounded_by_dropped_mass(self, ring):
        s = indicator_seed(ring, [0])
        result = truncated_lazy_walk(ring, s, 8, epsilon=1e-4)
        exact = untruncated_lazy_walk(ring, s, 8)
        # The ℓ1 error is at most the total dropped mass.
        assert np.abs(result.final - exact).sum() <= result.dropped_mass + 1e-12

    def test_support_stays_local_on_whiskers(self, whiskered):
        seed_node = 40  # first whisker node
        s = indicator_seed(whiskered, [seed_node])
        result = truncated_lazy_walk(whiskered, s, 6, epsilon=5e-3)
        assert max(result.support_sizes) < whiskered.num_nodes / 2

    def test_zero_epsilon_limit_matches_exact(self, ring):
        s = indicator_seed(ring, [1])
        result = truncated_lazy_walk(ring, s, 5, epsilon=1e-12)
        exact = untruncated_lazy_walk(ring, s, 5)
        assert np.allclose(result.final, exact, atol=1e-9)

    def test_trajectory_lengths(self, ring):
        s = indicator_seed(ring, [0])
        result = truncated_lazy_walk(ring, s, 4, epsilon=1e-4)
        assert len(result.trajectory) == 5  # seed + 4 steps
        assert len(result.support_sizes) == 5

    def test_mass_never_increases(self, ring):
        s = indicator_seed(ring, [0])
        result = truncated_lazy_walk(ring, s, 10, epsilon=1e-3)
        masses = [v.sum() for v in result.trajectory]
        assert all(b <= a + 1e-12 for a, b in zip(masses, masses[1:]))


class TestHeatKernelPush:
    def test_error_bound(self, ring):
        from repro.diffusion.heat_kernel import heat_kernel_vector

        s = indicator_seed(ring, [0])
        t = 2.0
        result = heat_kernel_push(ring, s, t, epsilon=1e-6)
        exact = heat_kernel_vector(ring, s, t, kind="random_walk")
        err = np.abs(result.approximation - exact).sum()
        assert err <= result.dropped_mass + result.tail_bound + 1e-9

    def test_poisson_tail_decreases(self):
        tails = [poisson_tail(3.0, k) for k in (1, 5, 10, 20)]
        assert tails == sorted(tails, reverse=True)
        assert tails[-1] < 1e-6

    def test_terms_for_tail(self):
        n = terms_for_tail(4.0, 1e-8)
        assert poisson_tail(4.0, n) <= 1e-8
        assert poisson_tail(4.0, n - 1) > 1e-8

    def test_locality_on_whiskers(self, whiskered):
        seed_node = 40
        s = indicator_seed(whiskered, [seed_node])
        result = heat_kernel_push(whiskered, s, 3.0, epsilon=1e-3)
        assert result.touched.size < whiskered.num_nodes

    def test_larger_epsilon_smaller_support(self, ring):
        s = indicator_seed(ring, [0])
        tight = heat_kernel_push(ring, s, 3.0, epsilon=1e-7)
        loose = heat_kernel_push(ring, s, 3.0, epsilon=1e-2)
        assert loose.touched.size <= tight.touched.size

    def test_t_zero_is_rounded_seed(self, ring):
        s = indicator_seed(ring, [0])
        result = heat_kernel_push(ring, s, 0.0, epsilon=1e-6, num_terms=3)
        assert np.allclose(result.approximation, s, atol=1e-9)
