"""Tests for spectral cuts, local clustering drivers, MOV, and baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import HeatKernel, LazyWalk, PPR
from repro.exceptions import InvalidParameterError, PartitionError
from repro.graph.generators import barbell_graph, lollipop_graph, roach_graph
from repro.graph.random_generators import whiskered_expander
from repro.partition.baselines import (
    bfs_ball_cluster,
    kernighan_lin_bisection,
    random_bisection,
)
from repro.partition.local import best_local_cluster, local_cluster
from repro.partition.metrics import conductance
from repro.partition.mov import kappa_for_gamma, mov_cluster, mov_vector
from repro.partition.spectral import (
    cheeger_certificate,
    spectral_cut,
    spectral_cluster_ensemble,
)


class TestSpectralCut:
    def test_barbell_planted_cut(self, barbell):
        result = spectral_cut(barbell, method="exact")
        assert result.conductance == pytest.approx(1 / 57)
        assert result.nodes.size == 8

    def test_cheeger_certificate_holds_everywhere(
        self, barbell, lollipop, ring, grid, roach, expander, planted
    ):
        for graph in (barbell, lollipop, ring, grid, roach, expander,
                      planted):
            low, phi, high = cheeger_certificate(graph)
            assert low <= phi <= high

    def test_spectral_bisection_fails_on_roach(self):
        # Guattery–Miller [21]: the combinatorial-Laplacian median bisection
        # of the roach cuts all body rungs (φ = Θ(1)) while the optimal
        # bisection severs the antennae at cost 2 (φ → 0 as k grows).
        from repro.partition.spectral import spectral_bisection_median

        for k in (8, 16, 24):
            g = roach_graph(k, k)
            _, phi_bisect = spectral_bisection_median(
                g, laplacian="combinatorial"
            )
            length = 2 * k
            antennae = list(range(k, length)) + list(
                range(length + k, 2 * length)
            )
            antenna_phi = conductance(g, antennae)
            assert phi_bisect > 3.0 * antenna_phi

    def test_roach_gap_grows_with_size(self):
        # The bisection/optimal ratio grows linearly in k — the quadratic
        # Cheeger factor is saturated, not an artifact of the analysis.
        from repro.partition.spectral import spectral_bisection_median

        ratios = []
        for k in (8, 16, 32):
            g = roach_graph(k, k)
            _, phi_bisect = spectral_bisection_median(
                g, laplacian="combinatorial"
            )
            length = 2 * k
            antennae = list(range(k, length)) + list(
                range(length + k, 2 * length)
            )
            ratios.append(phi_bisect / conductance(g, antennae))
        assert ratios[0] < ratios[1] < ratios[2]

    def test_ensemble_has_both_orientations(self, barbell):
        (rows_fwd, _), (rows_bwd, _) = spectral_cluster_ensemble(
            barbell, method="exact"
        )
        assert rows_fwd and rows_bwd

    def test_iterative_methods_match_exact(self, ring):
        exact = spectral_cut(ring, method="exact")
        lanczos = spectral_cut(ring, method="lanczos", seed=0)
        assert lanczos.conductance == pytest.approx(
            exact.conductance, rel=1e-6
        )


class TestLocalClustering:
    def test_acl_recovers_whisker(self, whiskered):
        result = local_cluster(
            whiskered, [44], PPR(alpha=0.05), epsilon=1e-5
        )
        # Whisker 0 occupies 40..44; its cut is a single edge: φ = 1/9.
        assert result.conductance <= 1 / 9 + 1e-9
        assert set(result.nodes.tolist()) >= {40, 41, 42, 43, 44}

    def test_acl_recovers_clique_in_ring(self, ring):
        # Cap the sweep volume at one clique's volume so the local scale is
        # selected (the global half-ring cut is slightly better otherwise).
        result = local_cluster(
            ring, [2], PPR(alpha=0.1), epsilon=1e-6, max_volume=33.0
        )
        assert set(result.nodes.tolist()) == set(range(6))

    def test_nibble_recovers_clique_in_ring(self, ring):
        result = local_cluster(ring, [2], "nibble", epsilon=1e-5)
        # Nibble's best sweep is at least as good as the single clique.
        assert result.conductance <= conductance(ring, range(6)) + 1e-9

    def test_hk_recovers_clique_in_ring(self, ring):
        result = local_cluster(
            ring, [2], HeatKernel(t=4.0), epsilon=1e-6, max_volume=33.0
        )
        assert set(result.nodes.tolist()) == set(range(6))

    def test_max_volume_respected(self, ring):
        result = local_cluster(
            ring, [0], PPR(alpha=0.1), epsilon=1e-6, max_volume=40.0
        )
        assert ring.volume(result.nodes) <= 40.0

    def test_best_local_cluster_picks_minimum(self, ring):
        best = best_local_cluster(ring, [2])
        for dynamics in ("acl", "nibble", "hk"):
            single = local_cluster(ring, [2], dynamics)
            assert best.conductance <= single.conductance + 1e-9

    def test_grid_valued_spec_rejected(self, ring):
        with pytest.raises(InvalidParameterError):
            local_cluster(ring, [0], PPR(alpha=(0.05, 0.15)))

    def test_unknown_dynamics_rejected(self, ring):
        with pytest.raises(InvalidParameterError):
            local_cluster(ring, [0], "landing")

    def test_walk_point_spec_drives_nibble(self, ring):
        by_spec = local_cluster(ring, [2], LazyWalk(steps=40), epsilon=1e-5)
        assert by_spec.method == "nibble"
        assert by_spec.work > 0

    def test_work_accounting_positive(self, ring):
        result = local_cluster(ring, [0], PPR(alpha=0.1), epsilon=1e-4)
        assert result.work > 0
        assert result.num_pushes if hasattr(result, "num_pushes") else True

    def test_locality_work_independent_of_core_size(self):
        works = []
        for core in (64, 256):
            g = whiskered_expander(core, 4, 4, 6, seed=2)
            result = local_cluster(
                g, [core], PPR(alpha=0.2), epsilon=1e-3
            )
            works.append(result.work)
        assert works[1] < 4 * works[0] + 200


class TestMOV:
    def test_vector_orthogonal_to_trivial(self, ring):
        from repro.graph.matrices import trivial_eigenvector

        x, gamma = mov_vector(ring, [0, 1], gamma_fraction=0.5)
        assert abs(x @ trivial_eigenvector(ring)) < 1e-8
        assert np.linalg.norm(x) == pytest.approx(1.0)

    def test_cluster_biased_toward_seed(self, ring):
        result = mov_cluster(ring, [0, 1, 2], gamma_fraction=0.3)
        overlap = len(set(result.nodes.tolist()) & set(range(6)))
        assert overlap >= 3

    def test_gamma_near_lambda2_recovers_global(self, barbell):
        from repro.linalg.fiedler import fiedler_vector

        result = mov_cluster(barbell, [0], gamma_fraction=0.999)
        global_vec = fiedler_vector(barbell, method="exact")
        alignment = abs(result.vector @ global_vec)
        assert alignment > 0.99

    def test_very_negative_gamma_recovers_seed(self, ring):
        x, _ = mov_vector(ring, [0], gamma=-1e5)
        # The solution concentrates on the seed's projected indicator.
        assert int(np.argmax(np.abs(x))) == 0

    def test_correlation_monotone_in_gamma(self, ring):
        rows = kappa_for_gamma(ring, [0], [-10.0, -1.0, 0.01])
        correlations = [r[1] for r in rows]
        assert correlations[0] >= correlations[-1] - 1e-9

    def test_gamma_above_lambda2_rejected(self, ring):
        with pytest.raises(InvalidParameterError):
            mov_vector(ring, [0], gamma=10.0)

    def test_rayleigh_at_least_lambda2(self, lollipop):
        from repro.linalg.fiedler import fiedler_value

        lam2 = fiedler_value(lollipop, method="exact")
        result = mov_cluster(lollipop, [10], gamma_fraction=0.5)
        assert result.rayleigh >= lam2 - 1e-9


class TestBaselines:
    def test_random_bisection_valid(self, ring):
        nodes, phi = random_bisection(ring, seed=0)
        assert 0 < nodes.size < ring.num_nodes
        assert phi > 0

    def test_bfs_ball_on_grid_compact(self, grid):
        nodes, phi = bfs_ball_cluster(grid, 27, 9)
        assert nodes.size == 9
        # A ball is much better than random on a grid.
        _, random_phi = random_bisection(grid, seed=1)
        assert phi < 1.0

    def test_kl_beats_random_on_planted(self, planted):
        _, random_phi = random_bisection(planted, seed=2)
        _, kl_phi = kernighan_lin_bisection(planted, seed=2)
        assert kl_phi < random_phi

    def test_kl_finds_barbell_cut(self):
        g = barbell_graph(8)
        _, phi = kernighan_lin_bisection(g, seed=3)
        assert phi == pytest.approx(1 / 57)

    def test_ball_size_validation(self, ring):
        with pytest.raises(InvalidParameterError):
            bfs_ball_cluster(ring, 0, ring.num_nodes)
