"""Ablation tests for the design choices called out in DESIGN.md §5.

Each ablation switches one component off and verifies the measured effect
that justified it: MQI after multilevel bisection, support-restricted
sweeps, Lanczos vs power method, and the closed forms vs the generic
solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthetic_atp_dblp
from repro.graph.random_generators import whiskered_expander
from repro.ncp.profile import flow_cluster_ensemble_ncp
from repro.partition import sweep_cut
from repro.regularization import (
    GeneralizedEntropy,
    SpectralSDP,
    mirror_descent,
)


class TestMQIAblation:
    """DESIGN.md §5: MQI is what pushes the flow curve down."""

    def test_mqi_improves_flow_ensemble(self):
        graph = whiskered_expander(120, 4, 12, 6, seed=3)
        with_mqi = flow_cluster_ensemble_ncp(
            graph, min_size=4, seed=0, refiners=("mqi",)
        )
        without_mqi = flow_cluster_ensemble_ncp(
            graph, min_size=4, seed=0, refiners=()
        )
        best_with = min(c.conductance for c in with_mqi)
        best_without = min(c.conductance for c in without_mqi)
        assert best_with <= best_without + 1e-12

    def test_mqi_strictly_helps_on_atp(self):
        graph = synthetic_atp_dblp(scale="tiny", seed=5).graph
        with_mqi = flow_cluster_ensemble_ncp(
            graph, min_size=4, seed=1, refiners=("mqi",)
        )
        without_mqi = flow_cluster_ensemble_ncp(
            graph, min_size=4, seed=1, refiners=()
        )
        # Averaged over mid-size candidates, MQI lowers conductance.
        def mean_phi(candidates):
            mid = [c.conductance for c in candidates if 8 <= c.size <= 128]
            return float(np.mean(mid)) if mid else float("inf")

        assert mean_phi(with_mqi) <= mean_phi(without_mqi) + 1e-9


class TestLocalSweepAblation:
    """DESIGN.md §5: strong locality comes from restricting the sweep."""

    def test_restricted_sweep_touches_fewer_nodes(self):
        from repro.diffusion import approximate_ppr_push, indicator_seed

        graph = whiskered_expander(200, 4, 10, 6, seed=2)
        seed_vector = indicator_seed(graph, [202])
        push = approximate_ppr_push(
            graph, seed_vector, alpha=0.1, epsilon=1e-4
        )
        support = np.flatnonzero(push.approximation > 0)
        restricted = sweep_cut(
            graph, push.approximation, restrict_to=support
        )
        unrestricted = sweep_cut(graph, push.approximation)
        # Restricted sweep examines only the support.
        assert restricted.order.size == support.size
        assert unrestricted.order.size == graph.num_nodes
        # And on the support it finds the same local cluster.
        assert restricted.conductance <= unrestricted.conductance + 1e-9

    def test_restriction_preserves_local_quality(self, whiskered):
        from repro.diffusion import approximate_ppr_push, indicator_seed

        seed_vector = indicator_seed(whiskered, [41])
        push = approximate_ppr_push(
            whiskered, seed_vector, alpha=0.05, epsilon=1e-5
        )
        support = np.flatnonzero(push.approximation > 0)
        restricted = sweep_cut(
            whiskered, push.approximation, restrict_to=support
        )
        # The whisker cut (phi = 1/9) is found inside the support alone.
        assert restricted.conductance <= 1 / 9 + 1e-9


class TestSolverVsClosedFormAblation:
    """DESIGN.md §5: the generic solver validates the closed forms."""

    def test_mirror_descent_reaches_closed_form_value(self, ring):
        sdp = SpectralSDP.from_graph(ring)
        regularizer = GeneralizedEntropy()
        eta = 2.0
        closed = regularizer.closed_form(sdp.deflated_laplacian, eta)
        closed_value = float(
            np.trace(sdp.deflated_laplacian @ closed)
            + regularizer.value(closed) / eta
        )
        solve = mirror_descent(
            sdp.deflated_laplacian, regularizer, eta,
            max_iterations=3000, tol=1e-12,
        )
        assert solve.objective == pytest.approx(closed_value, abs=1e-8)

    def test_solver_from_warm_start_stays_at_optimum(self, barbell):
        sdp = SpectralSDP.from_graph(barbell)
        regularizer = GeneralizedEntropy()
        eta = 1.0
        closed = regularizer.closed_form(sdp.deflated_laplacian, eta)
        solve = mirror_descent(
            sdp.deflated_laplacian, regularizer, eta,
            initial=closed, max_iterations=50, tol=1e-12,
        )
        assert np.linalg.norm(solve.solution - closed) < 1e-8


class TestEigensolverAblation:
    """DESIGN.md §5: Lanczos vs power method accuracy/iteration tradeoff."""

    def test_lanczos_fewer_matvecs_same_accuracy(self, grid):
        from repro.graph.matrices import (
            normalized_laplacian,
            trivial_eigenvector,
        )
        from repro.linalg.fiedler import fiedler_value
        from repro.linalg.lanczos import lanczos_extreme_eigenpairs
        from repro.linalg.power import power_method

        lam2 = fiedler_value(grid, method="exact")
        laplacian = normalized_laplacian(grid)
        trivial = trivial_eigenvector(grid)
        power = power_method(
            lambda x: 2 * x - laplacian @ x, grid.num_nodes,
            deflate=[trivial], tol=1e-8, max_iterations=100_000, seed=0,
        )
        values, _ = lanczos_extreme_eigenpairs(
            laplacian, grid.num_nodes, 1, which="smallest",
            num_steps=50, deflate=[trivial], seed=0,
        )
        power_error = abs((2 - power.eigenvalue) - lam2)
        lanczos_error = abs(values[0] - lam2)
        assert lanczos_error <= max(power_error, 1e-9)
        assert 50 < power.iterations
