import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package (src/repro/__init__.py).
_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(encoding="utf-8"), re.M
).group(1)

setup(
    name="repro",
    version=VERSION,
    description=(
        "Reproduction of Mahoney's PODS 2012 'Approximate Computation "
        "and Implicit Regularization' with a batched diffusion engine, "
        "a parallel NCP runner, and the `repro` workbench CLI"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    extras_require={
        # The optional JIT kernel tier: `pip install -e .[jit]` makes the
        # registered "numba" backend compile the CSR frontier loops; the
        # package works (and tests pass) without it — the backend then
        # degrades to the numpy reference with a RuntimeWarning.
        "jit": ["numba>=0.59"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
