"""Network community profile: the Figure 1 experiment on one graph.

Runs the full spectral-vs-flow comparison of the paper's Section 3.2 on the
synthetic AtP-DBLP stand-in: the flow pipeline (multilevel bisection + MQI)
against the spectral pipeline (ACL push + sweep), reporting, per cluster-size
bucket, conductance (Figure 1a), average shortest-path length (Figure 1b),
and the external/internal conductance ratio (Figure 1c).

Run with ``python examples/community_profile.py [scale]`` where scale is
tiny/small (default tiny, for speed).
"""

from __future__ import annotations

import sys

from repro.api import PPR, DiffusionGrid, figure1_comparison
from repro.core import format_table
from repro.datasets import synthetic_atp_dblp


def main(scale="tiny"):
    dataset = synthetic_atp_dblp(scale=scale, seed=7)
    graph = dataset.graph
    print(f"Workload: synthetic AtP-DBLP ({scale}), {graph!r}\n")
    result = figure1_comparison(
        graph,
        grid=DiffusionGrid(PPR(), num_seeds=25, seed=11),
        num_buckets=8,
        seed=11,
    )
    rows = []
    for bucket in result.buckets:
        sn, fn = bucket.spectral_niceness, bucket.flow_niceness
        rows.append(
            [
                f"[{bucket.size_low:.0f}, {bucket.size_high:.0f})",
                bucket.spectral_phi,
                bucket.flow_phi,
                sn.average_path_length if sn else float("nan"),
                fn.average_path_length if fn else float("nan"),
                sn.conductance_ratio if sn else float("nan"),
                fn.conductance_ratio if fn else float("nan"),
            ]
        )
    print(
        format_table(
            ["size bucket", "phi spec", "phi flow", "aspl spec",
             "aspl flow", "ratio spec", "ratio flow"],
            rows,
            title=(
                "Figure 1 panels (phi: lower=better objective; aspl & "
                "ratio: lower=nicer)"
            ),
        )
    )
    print()
    print(f"ensembles: {result.spectral_candidates} spectral / "
          f"{result.flow_candidates} flow candidates")
    print(f"Fig 1(a)  flow wins conductance in "
          f"{result.flow_wins_conductance():.0%} of joint buckets")
    print(f"Fig 1(b)  spectral wins path-length in "
          f"{result.spectral_wins_path_length():.0%}")
    print(f"Fig 1(c)  spectral wins conductance-ratio in "
          f"{result.spectral_wins_conductance_ratio():.0%}")
    print("\nPaper's shape: flow dominates (a); spectral dominates (b), (c) "
          "- the two relaxations implicitly regularize differently.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
