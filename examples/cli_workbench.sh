#!/usr/bin/env bash
# The `python -m repro` workbench, end to end, in one script.
#
# Runs from the repository root (PYTHONPATH=src) and writes everything
# under ./runs/workbench-demo. Each step is a standalone one-liner; every
# run leaves a manifest.json making it replayable byte for byte.
#
#   bash examples/cli_workbench.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
OUT=runs/workbench-demo
REPRO="python -m repro"

# 1. What workloads exist? (also: --markdown for the README table)
$REPRO datasets

# 2. Export a suite graph to a plain edge-list file.
$REPRO datasets --export barbell --out "$OUT/barbell.tsv"

# 3. NCP candidate ensembles for all three canonical dynamics on the
#    Figure 1 workload, sharded over 2 worker processes with an on-disk
#    chunk cache. Rerun it: every chunk is a cache hit.
$REPRO ncp --graph atp --dynamics ppr,hk,walk --num-seeds 16 \
    --workers 2 --cache-dir "$OUT/.ncp-cache" --out "$OUT/atp-ncp"

# 4. The same pipeline on an *external* graph file — your own workload
#    goes through the identical code path.
$REPRO ncp --graph "$OUT/barbell.tsv" --dynamics "ppr:alpha=0.05/0.15,eps=1e-4" \
    --num-seeds 8 --out "$OUT/external-ncp"

# 5. A seeded strongly local cluster with an explicit spec string.
$REPRO cluster --graph atp --seeds 5 --dynamics "hk:t=5,eps=1e-4" \
    --out "$OUT/cluster"

# 6. The registry-driven engine benchmark (E12b): BENCH_engine.json with
#    one batched-vs-scalar section per registered dynamics.
$REPRO bench --graph atp --num-seeds 6 --out "$OUT/bench"

echo
echo "Artifacts under $OUT (each directory has a manifest.json):"
find "$OUT" -type f | sort
