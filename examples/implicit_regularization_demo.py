"""Implicit regularization knobs, demonstrated end to end.

Three demonstrations from the paper's Section 2.3 / 3.1:

1. the *regularization path* of the heat kernel — sweeping the time
   parameter t trades Rayleigh quotient (solution quality) against entropy
   (solution niceness), exactly like a ridge path trades loss against norm;
2. *early stopping* of the power method — the iteration count acts as the
   regularization parameter;
3. *truncation* in the ACL push algorithm — the threshold ε controls a
   locality/accuracy tradeoff with a provable error bound.

Run with ``python examples/implicit_regularization_demo.py``.
"""

from __future__ import annotations

from repro.core import format_table
from repro.datasets import load_graph
from repro.regularization import (
    early_stopping_path,
    heat_kernel_path,
    truncation_path,
)


def demo_heat_kernel_path(graph):
    print("1) Heat-kernel regularization path (eta = t):")
    points = heat_kernel_path(graph, [0.25, 1.0, 4.0, 16.0, 64.0])
    print(
        format_table(
            ["t (= eta)", "Tr(LX)  [quality]", "entropy  [niceness]",
             "effective rank", "||X - X*||"],
            [
                [p.parameter, p.rayleigh, p.entropy, p.effective_rank,
                 p.distance_to_optimum]
                for p in points
            ],
        )
    )
    print("   -> more time = less regularization: quality improves, the\n"
          "      density sharpens toward the rank-one Fiedler optimum.\n")


def demo_early_stopping(graph):
    print("2) Early stopping of the (deflated) power method:")
    points = early_stopping_path(graph, 120, seed=1)
    picked = [points[i] for i in (0, 4, 19, 59, 119)]
    print(
        format_table(
            ["iteration", "Rayleigh quotient", "|cos(angle to exact v2)|"],
            [[p.iteration, p.rayleigh, p.alignment] for p in picked],
        )
    )
    print("   -> the iteration count is a regularization parameter:\n"
          "      early iterates are smoother, late iterates sharper.\n")


def demo_push_truncation(graph):
    print("3) ACL push truncation (threshold eps):")
    points = truncation_path(graph, [0], [1e-2, 1e-3, 1e-4, 1e-5],
                             alpha=0.15)
    print(
        format_table(
            ["epsilon", "support size", "edge work",
             "max degree-normalized error (<= eps)"],
            [[p.epsilon, p.support_size, p.work, p.error] for p in points],
        )
    )
    print("   -> smaller eps: larger support, more work, provably smaller\n"
          "      error. The guarantee error <= eps holds on every row.\n")


def main():
    graph = load_graph("whiskered", seed=0)
    print(f"Workload: whiskered expander, {graph!r}\n")
    demo_heat_kernel_path(graph)
    demo_early_stopping(graph)
    demo_push_truncation(graph)


if __name__ == "__main__":
    main()
