"""Semi-supervised community recovery: optimization vs operational (§3.3).

A domain scientist knows a few members of one research community in the
synthetic AtP-DBLP network and wants the rest. The paper contrasts two
routes:

* the **optimization approach** — MOV locally-biased spectral (Problem (8)),
  which solves a well-defined objective but touches the whole graph; and
* the **operational approach** — ACL push, which is strongly local but whose
  optimization problem is implicit.

This example runs both from the same seeds and compares recovery quality
(F1 against the planted community), conductance, and the amount of the
graph each touches.

Run with ``python examples/semi_supervised_seeding.py``.
"""

from __future__ import annotations

import numpy as np

from repro.api import PPR, local_cluster
from repro.core import format_table
from repro.datasets import synthetic_atp_dblp
from repro.partition import mov_cluster


def f1_score(predicted, truth):
    predicted, truth = set(predicted), set(truth)
    if not predicted or not truth:
        return 0.0
    tp = len(predicted & truth)
    if tp == 0:
        return 0.0
    precision = tp / len(predicted)
    recall = tp / len(truth)
    return 2 * precision * recall / (precision + recall)


def main():
    dataset = synthetic_atp_dblp(scale="small", seed=5)
    graph = dataset.graph
    print(f"Workload: synthetic AtP-DBLP, {graph!r}\n")
    rng = np.random.default_rng(0)
    # Author nodes in the connected component (clusters also contain
    # papers; recovery is scored on authors only).
    author_nodes = set(
        new_id for new_id, old_id in enumerate(dataset.original_ids)
        if int(old_id) < dataset.num_authors
    )
    rows = []
    for community in range(4):
        members = dataset.community_members(community)
        if members.size < 12:
            continue
        seeds = rng.choice(members, size=4, replace=False)
        target_volume = 3.0 * float(graph.degrees[members].sum())

        acl = local_cluster(
            graph, seeds, PPR(alpha=0.05), epsilon=1e-5,
            max_volume=target_volume,
        )
        mov = mov_cluster(
            graph, seeds, gamma_fraction=0.7, max_volume=target_volume
        )
        acl_authors = [u for u in acl.nodes.tolist() if u in author_nodes]
        mov_authors = [u for u in mov.nodes.tolist() if u in author_nodes]
        rows.append(
            [
                community,
                members.size,
                "ACL (operational)",
                acl.nodes.size,
                acl.conductance,
                f1_score(acl_authors, members.tolist()),
                acl.support_size,
            ]
        )
        rows.append(
            [
                community,
                members.size,
                "MOV (optimization)",
                mov.nodes.size,
                mov.conductance,
                f1_score(mov_authors, members.tolist()),
                graph.num_nodes,  # MOV touches the whole graph
            ]
        )
    print(
        format_table(
            ["community", "|truth|", "method", "|cluster|", "phi",
             "F1 vs truth (authors)", "nodes touched"],
            rows,
            title="Semi-supervised recovery from 4 seed authors",
        )
    )
    print(
        "\n-> both recover the community; ACL touches a small fraction of\n"
        "   the graph, MOV solves a global system (the Section 3.3 cost\n"
        "   contrast), while MOV's objective is explicit (Problem (8))."
    )


if __name__ == "__main__":
    main()
