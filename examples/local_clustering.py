"""Strongly local clustering: Section 3.3's operational approach.

From a single seed node in a whiskered expander, runs the three strongly
local procedures the paper cites — ACL push [1], Spielman–Teng truncated
walks [39], and heat-kernel push [15] — through the unified dynamics API
(one ``local_cluster`` driver, one single-point spec per dynamics) and
shows that (i) each finds the low-conductance whisker, (ii) the work each
performs is governed by the output size, not the graph size, and (iii)
the Section 3.3 pathology ("a seed node not being part of its own
cluster") actually occurs.

Run with ``python examples/local_clustering.py``.
"""

from __future__ import annotations

from repro.api import HeatKernel, LazyWalk, PPR, local_cluster
from repro.core import format_table
from repro.graph.random_generators import whiskered_expander


def main():
    seed_node = None
    rows = []
    for core_size in (128, 512, 2048):
        graph = whiskered_expander(core_size, 4, 10, 8, seed=3)
        seed_node = core_size + 2  # inside the first whisker
        for spec, kwargs in (
            (PPR(alpha=0.1), {"epsilon": 1e-4}),
            (LazyWalk(steps=40), {"epsilon": 1e-4}),
            (HeatKernel(t=6.0), {"epsilon": 1e-4}),
        ):
            result = local_cluster(graph, [seed_node], spec, **kwargs)
            rows.append(
                [
                    graph.num_nodes,
                    result.method,
                    result.nodes.size,
                    result.conductance,
                    result.support_size,
                    result.work,
                    result.contains_seed,
                ]
            )
    print(
        format_table(
            ["n", "method", "|cluster|", "phi", "support", "edge work",
             "seed inside?"],
            rows,
            title="Local clustering from one whisker seed, n swept 16x",
        )
    )
    print(
        "\n-> work grows far slower than n (strong locality: cost depends\n"
        "   on the output, not the graph; Section 3.3).\n"
    )

    # Exhibit the Section 3.3 pathology: a seed node not being part of
    # "its own cluster". With a seed set straddling two communities, the
    # best sweep cluster covers one community and strands the other seed.
    from repro.graph.generators import ring_of_cliques

    graph = ring_of_cliques(6, 8)
    # Two seeds in clique 0, one stray seed in clique 3: the best sweep
    # cluster is clique 0, stranding the stray seed.
    seeds = [0, 1, 3 * 8]
    result = local_cluster(
        graph, seeds, PPR(alpha=0.02), epsilon=1e-6, max_volume=70.0
    )
    stranded = [s for s in seeds if s not in set(result.nodes.tolist())]
    print("Seed-not-in-own-cluster (two seeds in different communities):")
    print(f"  seeds {seeds} -> cluster of size {result.nodes.size} with "
          f"phi {result.conductance:.4f}")
    print(f"  seed(s) excluded from their own cluster: {stranded}")
    print("\n-> truncation + sweep rounding are implicit regularizers with "
          "visible side-effects (Section 3.3).")


if __name__ == "__main__":
    main()
