"""Quickstart: the paper's message through the unified dynamics API.

Builds a small community-structured graph, then walks the registry of
canonical diffusion dynamics (Heat Kernel, PageRank, Lazy Random Walk):
each entry verifies — numerically, to machine precision — that its
dynamics *exactly* solves a regularized version of the Fiedler-eigenvector
SDP (Section 3.1 of the paper), and each entry's operational side (a
single-point spec) drives a strongly local cluster from a seed node
through one generic driver (Section 3.3). Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import canonical_dynamics, local_cluster
from repro.core import format_table
from repro.datasets import load_graph


def main():
    graph = load_graph("planted", seed=0)
    print(f"Workload: planted-partition graph, {graph!r}\n")

    print("The Section 3.1 theorem, checked numerically:")
    print("each dynamics' output == the regularized SDP optimum.\n")
    rows = []
    for dynamics in canonical_dynamics():
        report = dynamics.verify(graph)
        rows.append(
            [
                dynamics.name,
                report.parameter_description,
                dynamics.regularizer,
                report.diffusion_vs_closed_form,
                report.kkt_residual,
            ]
        )
        print(f"  * {dynamics.describe()}")
    print()
    print(
        format_table(
            ["dynamics", "parameter", "implicit regularizer G(X)",
             "||diffusion - SDP opt||_F", "KKT residual"],
            rows,
            title="Equivalence check (both gap columns should be ~1e-14)",
        )
    )
    worst = max(row[3] for row in rows)
    print(f"\nLargest gap: {worst:.2e} -> the approximation algorithms ARE "
          "regularized optimizers.")

    # The same registry entries drive the operational side (Section 3.3):
    # one generic local-cluster driver, one single-point spec per dynamics.
    print("\nStrongly local clustering from seed node 0, all dynamics:")
    local_rows = []
    for dynamics in canonical_dynamics():
        result = local_cluster(
            graph, [0], dynamics.local_spec(graph), epsilon=1e-4
        )
        local_rows.append(
            [dynamics.key, result.method, result.nodes.size,
             result.conductance, result.work]
        )
    print(format_table(
        ["dynamics", "method", "|cluster|", "phi", "edge work"],
        local_rows,
        title="local_cluster(graph, [0], <spec>) per registered dynamics",
    ))


if __name__ == "__main__":
    main()
