"""Quickstart: the paper's message in thirty lines.

Builds a small community-structured graph, then shows the three canonical
diffusion dynamics (Heat Kernel, PageRank, Lazy Random Walk) and verifies —
numerically, to machine precision — that each one *exactly* solves a
regularized version of the Fiedler-eigenvector SDP (Section 3.1 of the
paper). Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import canonical_dynamics, format_table
from repro.datasets import load_graph


def main():
    graph = load_graph("planted", seed=0)
    print(f"Workload: planted-partition graph, {graph!r}\n")

    print("The Section 3.1 theorem, checked numerically:")
    print("each dynamics' output == the regularized SDP optimum.\n")
    rows = []
    for dynamics in canonical_dynamics():
        report = dynamics.verify(graph)
        rows.append(
            [
                dynamics.name,
                report.parameter_description,
                dynamics.regularizer,
                report.diffusion_vs_closed_form,
                report.kkt_residual,
            ]
        )
        print(f"  * {dynamics.describe()}")
    print()
    print(
        format_table(
            ["dynamics", "parameter", "implicit regularizer G(X)",
             "||diffusion - SDP opt||_F", "KKT residual"],
            rows,
            title="Equivalence check (both gap columns should be ~1e-14)",
        )
    )
    worst = max(row[3] for row in rows)
    print(f"\nLargest gap: {worst:.2e} -> the approximation algorithms ARE "
          "regularized optimizers.")


if __name__ == "__main__":
    main()
